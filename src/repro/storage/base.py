"""The pluggable graph-storage contract (ROADMAP item 2).

GraphTempo's operators (Definitions 2.2-2.5), both aggregation engines
(Algorithm 2 and the vectorized fast path) and the exploration lattice
(Section 3) all reduce to four physical primitives over the Section-4
arrays:

* boolean **presence reductions** over a time window
  (:meth:`GraphStorageBackend.presence_mask`);
* **time slicing** — restricting every array to a window
  (:meth:`GraphStorageBackend.slice_time`);
* **attribute column reads** (:meth:`GraphStorageBackend.attribute_column`);
* **adjacency scans** resolving edge endpoints to node rows
  (:meth:`GraphStorageBackend.adjacency_scan`).

A :class:`GraphStorageBackend` implements those primitives over some
physical layout and round-trips losslessly to the dense
:class:`~repro.frames.LabeledFrame` representation
(:meth:`GraphStorageBackend.to_frames`), so readers stay oblivious to
the layout — the TVA-style separation of logical model from physical
storage.  Backends register by name; selection threads through
``TemporalGraph(storage=...)``, ``GraphTempoSession(storage=...)`` and
the ``REPRO_STORAGE_BACKEND`` environment default.

Every registered backend is held to the same oracle: the conformance
suite (``tests/test_storage_conformance.py``) runs the Table-1 cases,
every registered fuzz law, exploration mask bit-equality and streaming
replay identity against each backend, and the ``backend-storage``
differential law keeps fuzzing them forever after.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from collections.abc import Hashable, Iterator, Sequence
from typing import TYPE_CHECKING, Any, ClassVar, NamedTuple

import numpy as np

from ..errors import StorageError
from ..frames import LabeledFrame

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from ..core.graph import TemporalGraph

__all__ = [
    "ENV_BACKEND",
    "GraphStorageBackend",
    "StorageFrames",
    "backend_names",
    "frames_of",
    "get_backend",
    "register_backend",
    "resolve_backend_name",
]

#: Environment variable naming the default backend for graphs that do
#: not pin one explicitly.
ENV_BACKEND = "REPRO_STORAGE_BACKEND"


class StorageFrames(NamedTuple):
    """The dense Section-4 representation every backend round-trips to.

    This is exactly the constructor payload of
    :class:`~repro.core.graph.TemporalGraph` (minus the timeline object,
    recoverable from ``times``), so ``frames -> backend -> to_frames``
    identity is a meaningful bit-exactness statement.
    """

    times: tuple[Hashable, ...]
    node_presence: LabeledFrame
    edge_presence: LabeledFrame
    static_attrs: LabeledFrame
    varying_attrs: dict[str, LabeledFrame]
    edge_attrs: LabeledFrame | None


def frames_of(graph: "TemporalGraph") -> StorageFrames:
    """The :class:`StorageFrames` view of a graph (shared, not copied)."""
    return StorageFrames(
        times=graph.timeline.labels,
        node_presence=graph.node_presence,
        edge_presence=graph.edge_presence,
        static_attrs=graph.static_attrs,
        varying_attrs=dict(graph.varying_attrs),
        edge_attrs=graph.edge_attrs,
    )


class GraphStorageBackend(ABC):
    """Abstract physical layout of one temporal attributed graph.

    Subclasses set :attr:`name` and implement the abstract primitives.
    All implementations must be **bit-exact** peers: identical masks,
    identical reconstructed frames, identical taxonomy errors on the
    same inputs.  Backends are value-like once constructed — nothing in
    the reader API mutates them — so a backend instance may be shared
    between a graph, its restrictions and forked workers.
    """

    #: Registry key; subclasses override.
    name: ClassVar[str] = "abstract"

    # ------------------------------------------------------------------
    # Construction / round-trip
    # ------------------------------------------------------------------

    @classmethod
    @abstractmethod
    def from_frames(cls, frames: StorageFrames) -> "GraphStorageBackend":
        """Build the backend's physical layout from dense frames."""

    @classmethod
    def from_graph(cls, graph: "TemporalGraph") -> "GraphStorageBackend":
        """Build from a :class:`~repro.core.graph.TemporalGraph`."""
        return cls.from_frames(frames_of(graph))

    @abstractmethod
    def to_frames(self) -> StorageFrames:
        """Reconstruct the dense frames, bit-exactly."""

    def to_graph(self, validate: bool = False) -> "TemporalGraph":
        """Materialize a :class:`~repro.core.graph.TemporalGraph` whose
        ``storage`` is this backend instance."""
        from ..core.graph import TemporalGraph

        frames = self.to_frames()
        return TemporalGraph(
            timeline=_timeline(frames.times),
            node_presence=frames.node_presence,
            edge_presence=frames.edge_presence,
            static_attrs=frames.static_attrs,
            varying_attrs=frames.varying_attrs,
            validate=validate,
            edge_attrs=frames.edge_attrs,
            storage=self,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def times(self) -> tuple[Hashable, ...]:
        """Time-point labels, in timeline order."""

    @property
    @abstractmethod
    def node_labels(self) -> tuple[Hashable, ...]:
        """Node identifiers, in storage order."""

    @property
    @abstractmethod
    def edge_labels(self) -> tuple[Hashable, ...]:
        """Edge identifiers, in storage order."""

    def entity_labels(self, entity: str) -> tuple[Hashable, ...]:
        """Labels of one entity axis (``"nodes"`` or ``"edges"``)."""
        if entity == "nodes":
            return self.node_labels
        if entity == "edges":
            return self.edge_labels
        raise StorageError(
            f"unknown entity {entity!r}; expected 'nodes' or 'edges'"
        )

    # ------------------------------------------------------------------
    # Physical primitives
    # ------------------------------------------------------------------

    @abstractmethod
    def presence_mask(
        self,
        entity: str,
        times: Sequence[Hashable] | None = None,
        mode: str = "any",
    ) -> np.ndarray:
        """Boolean per-entity mask over a time window.

        ``mode="any"`` — present at *some* window point (union rule);
        ``mode="all"`` — present at *every* window point (intersection
        rule, vacuously true on an empty window); ``mode="none"`` —
        absent throughout (difference rule).  ``times=None`` means the
        whole timeline.  Unknown time labels raise
        :class:`~repro.errors.LabelError`; unknown modes raise
        :class:`~repro.errors.StorageError`.  Semantics — including
        duplicate and unordered window labels — must match
        :meth:`repro.frames.LabeledFrame.any_mask` and friends exactly.
        """

    @abstractmethod
    def presence_matrix(self, entity: str) -> np.ndarray:
        """The full boolean presence matrix ``(n_entities, n_times)``.

        Always a fresh, writable array the caller may own.
        """

    @abstractmethod
    def slice_time(self, times: Sequence[Hashable]) -> "GraphStorageBackend":
        """A new backend restricted to the given time columns, in the
        given order, keeping every entity row (the storage-level time
        projection of Section 4.1)."""

    def slice_entities(
        self, entity: str, start: int, stop: int
    ) -> "GraphStorageBackend":
        """A new backend restricted to one contiguous entity-row range.

        ``entity="nodes"`` keeps ``node_labels[start:stop]`` (presence,
        static and time-varying attributes), leaving the timeline and
        the edge axis whole — an edge whose endpoint fell outside the
        shard reports ``-1`` from :meth:`adjacency_scan`, per that
        contract.  ``entity="edges"`` slices the edge axis instead.
        Empty ranges produce a valid empty-axis backend, so a shard plan
        with more shards than rows stays total.  The slice is rebuilt
        through ``from_frames`` so it is a first-class backend of the
        same physical layout.
        """
        labels = self.entity_labels(entity)
        if not (0 <= start <= stop <= len(labels)):
            raise StorageError(
                f"invalid {entity} range [{start}:{stop}] for axis of "
                f"{len(labels)} rows"
            )
        keep = list(labels[start:stop])
        frames = self.to_frames()
        if entity == "nodes":
            sliced = StorageFrames(
                times=frames.times,
                node_presence=frames.node_presence.select_rows(keep),
                edge_presence=frames.edge_presence,
                static_attrs=frames.static_attrs.select_rows(keep),
                varying_attrs={
                    name: frame.select_rows(keep)
                    for name, frame in frames.varying_attrs.items()
                },
                edge_attrs=frames.edge_attrs,
            )
        else:
            sliced = StorageFrames(
                times=frames.times,
                node_presence=frames.node_presence,
                edge_presence=frames.edge_presence.select_rows(keep),
                static_attrs=frames.static_attrs,
                varying_attrs=dict(frames.varying_attrs),
                edge_attrs=(
                    None
                    if frames.edge_attrs is None
                    else frames.edge_attrs.select_rows(keep)
                ),
            )
        return type(self).from_frames(sliced)

    @abstractmethod
    def attribute_column(
        self, name: str, time: Hashable | None = None
    ) -> np.ndarray:
        """One attribute's per-node values as an object array.

        Static attributes take ``time=None``; time-varying attributes
        require a time point (``None`` raises
        :class:`~repro.errors.StorageError`, matching the
        ``TemporalGraph.attribute_value`` contract).  Unknown names
        raise :class:`~repro.errors.LabelError`.
        """

    @abstractmethod
    def adjacency_scan(self) -> Iterator[tuple[Any, int, int]]:
        """Yield ``(edge_label, source_row, target_row)`` per edge, in
        storage order.  Node rows index :attr:`node_labels`; a dangling
        or malformed endpoint is reported as ``-1`` — the scan itself
        never raises, callers decide the severity.
        """

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @abstractmethod
    def nbytes(self) -> int:
        """Bytes of array payload this layout holds resident.

        Used by ``benchmarks/bench_storage.py`` for the machine-independent
        footprint comparison; label/index overhead (shared by all
        backends) is excluded.
        """

    # ------------------------------------------------------------------
    # Shared helpers for subclasses
    # ------------------------------------------------------------------

    @staticmethod
    def _check_mode(mode: str) -> str:
        if mode not in ("any", "all", "none"):
            raise StorageError(
                f"unknown presence mode {mode!r}; expected 'any', 'all' or 'none'"
            )
        return mode

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({len(self.node_labels)} nodes, "
            f"{len(self.edge_labels)} edges, {len(self.times)} time points)"
        )


def _timeline(times: Sequence[Hashable]) -> Any:
    from ..core.intervals import Timeline

    return Timeline(times)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, type[GraphStorageBackend]] = {}


def register_backend(
    cls: type[GraphStorageBackend],
) -> type[GraphStorageBackend]:
    """Class decorator registering a backend under ``cls.name``."""
    name = cls.name
    if name in _REGISTRY:
        raise StorageError(f"storage backend {name!r} is already registered")
    _REGISTRY[name] = cls
    return cls


def backend_names() -> tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_REGISTRY)


def get_backend(name: str) -> type[GraphStorageBackend]:
    """The backend class registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise StorageError(
            f"unknown storage backend {name!r}; registered: "
            f"{sorted(_REGISTRY)}"
        ) from None


def resolve_backend_name(name: str | None = None) -> str:
    """Resolve an explicit name, the env default, or ``"dense"``.

    The resolved name is validated against the registry so typos in
    ``REPRO_STORAGE_BACKEND`` fail loudly at first use instead of
    silently falling back.
    """
    resolved = name or os.environ.get(ENV_BACKEND) or "dense"
    get_backend(resolved)
    return resolved
