"""Event time series: evolution events as a signal over the timeline.

The exploration strategies answer "*which interval pairs* have ≥ k
events"; the dual view treats the per-consecutive-pair event counts as a
time series and asks *where the signal moves* — the first instinct of an
analyst eyeballing Figures 13/14.  This module builds those series and
provides two simple detectors:

* :func:`largest_shift` — the step with the biggest absolute change
  (e.g. MovieLens's August growth spike);
* :func:`zscore_anomalies` — steps deviating more than ``threshold``
  standard deviations from the series mean.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass
from typing import Any

from ..bench.reporting import format_table
from ..core import TemporalGraph
from ..exploration import EntityKind, EventType, consecutive_event_counts
from ..errors import ValidationError

__all__ = ["EventSeries", "event_series", "largest_shift", "zscore_anomalies"]


@dataclass(frozen=True)
class EventSeries:
    """Per-consecutive-pair event counts with their step labels."""

    event: EventType
    entity: EntityKind
    steps: tuple[tuple[Hashable, Hashable], ...]
    counts: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.counts)

    def to_table(self) -> str:
        rows = [
            (f"{old} -> {new}", count)
            for (old, new), count in zip(self.steps, self.counts)
        ]
        return format_table(["step", f"{self.event} events"], rows)


def event_series(
    graph: TemporalGraph,
    event: EventType,
    entity: EntityKind = EntityKind.EDGES,
    attributes: Sequence[str] = (),
    key: Any = None,
) -> EventSeries:
    """The event-count series over consecutive time-point pairs."""
    counts = consecutive_event_counts(
        graph, event, entity=entity, attributes=attributes, key=key
    )
    labels = graph.timeline.labels
    steps = tuple(
        (labels[i], labels[i + 1]) for i in range(len(labels) - 1)
    )
    return EventSeries(event, entity, steps, tuple(counts))


def largest_shift(series: EventSeries) -> tuple[int, int]:
    """``(step index, signed delta)`` of the biggest count change.

    The index refers to the *later* of the two adjacent steps — e.g.
    index 2 means the change from step 1 to step 2.  Requires at least
    two steps.
    """
    if len(series) < 2:
        raise ValidationError("a shift needs at least two steps")
    best_index, best_delta = 1, series.counts[1] - series.counts[0]
    for i in range(2, len(series)):
        delta = series.counts[i] - series.counts[i - 1]
        if abs(delta) > abs(best_delta):
            best_index, best_delta = i, delta
    return best_index, best_delta


def zscore_anomalies(
    series: EventSeries, threshold: float = 2.0
) -> list[tuple[int, float]]:
    """Steps whose count deviates more than ``threshold`` standard
    deviations from the series mean, as ``(index, z-score)`` pairs.

    A constant series has no anomalies (zero variance).
    """
    if threshold <= 0:
        raise ValidationError("threshold must be positive")
    n = len(series)
    if n == 0:
        return []
    mean = sum(series.counts) / n
    variance = sum((c - mean) ** 2 for c in series.counts) / n
    if variance == 0:
        return []
    std = variance ** 0.5
    return [
        (i, (count - mean) / std)
        for i, count in enumerate(series.counts)
        if abs(count - mean) / std > threshold
    ]
