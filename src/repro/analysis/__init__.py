"""Qualitative analyses: dataset tables, evolution and exploration reports
(Section 5.2)."""

from .metrics import densification, homophily, stability_ratio, turnover
from .timeseries import (
    EventSeries,
    event_series,
    largest_shift,
    zscore_anomalies,
)
from .reports import (
    EvolutionReport,
    ExplorationReport,
    dataset_report,
    evolution_report,
    exploration_report,
)

__all__ = [
    "dataset_report",
    "evolution_report",
    "EvolutionReport",
    "exploration_report",
    "ExplorationReport",
    "homophily",
    "turnover",
    "stability_ratio",
    "densification",
    "EventSeries",
    "event_series",
    "largest_shift",
    "zscore_anomalies",
]
