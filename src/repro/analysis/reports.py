"""Qualitative analyses and report rendering (Section 5.2).

These helpers regenerate the paper's qualitative artifacts:

* :func:`dataset_report` — the per-time-point size tables (Tables 3/4);
* :func:`evolution_report` — the aggregate evolution graph with
  stability/growth/shrinkage weights and ratios (Figure 12);
* :func:`exploration_report` — interval pairs found for a ladder of
  thresholds (Figures 13/14).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass
from typing import Any

from ..bench.reporting import format_table
from ..core import (
    EvolutionAggregate,
    TemporalGraph,
    aggregate_evolution,
    attribute_predicate,
    filter_appearances,
)
from ..exploration import (
    EntityKind,
    EventType,
    ExplorationResult,
    ExtendSide,
    Goal,
    explore,
)

__all__ = [
    "dataset_report",
    "evolution_report",
    "EvolutionReport",
    "exploration_report",
    "ExplorationReport",
]


def dataset_report(graph: TemporalGraph, title: str = "dataset") -> str:
    """Per-time-point node/edge counts — the layout of Tables 3 and 4."""
    rows = graph.size_table()
    table = format_table(["time point", "#nodes", "#edges"], rows)
    total_nodes = graph.n_nodes
    total_edges = graph.n_edges
    return (
        f"{title}: {total_nodes} distinct nodes, {total_edges} distinct edges, "
        f"{len(graph.timeline)} time points\n{table}"
    )


@dataclass(frozen=True)
class EvolutionReport:
    """Figure-12-style evolution summary between two windows."""

    aggregate: EvolutionAggregate
    text: str


def evolution_report(
    graph: TemporalGraph,
    old_times: Iterable[Hashable],
    new_times: Iterable[Hashable],
    attributes: Sequence[str],
    min_publications: int | None = None,
    activity_attribute: str = "publications",
) -> EvolutionReport:
    """Aggregate evolution between two windows, optionally restricted to
    high-activity appearances (the paper's ``#Publications > 4`` filter).

    Returns both the raw :class:`EvolutionAggregate` and a rendered
    table of per-tuple stability/growth/shrinkage weights and ratios.
    """
    working = graph
    if min_publications is not None:
        keep = attribute_predicate(
            **{
                activity_attribute: lambda p: p is not None
                and p > min_publications
            }
        )
        working = filter_appearances(graph, keep)
    evo = aggregate_evolution(working, old_times, new_times, attributes)

    node_rows = []
    for key in sorted(evo.node_weights, key=str):
        weights = evo.node_weights[key]
        node_rows.append(
            [
                "/".join(str(v) for v in key),
                weights.stability,
                weights.growth,
                weights.shrinkage,
                f"{weights.ratio('stability'):.0%}",
                f"{weights.ratio('growth'):.0%}",
                f"{weights.ratio('shrinkage'):.0%}",
            ]
        )
    edge_rows = []
    for key in sorted(evo.edge_weights, key=str):
        weights = evo.edge_weights[key]
        source, target = key
        edge_rows.append(
            [
                "/".join(str(v) for v in source)
                + " -> "
                + "/".join(str(v) for v in target),
                weights.stability,
                weights.growth,
                weights.shrinkage,
                f"{weights.ratio('stability'):.0%}",
                f"{weights.ratio('growth'):.0%}",
                f"{weights.ratio('shrinkage'):.0%}",
            ]
        )
    headers = ["entity", "St", "Gr", "Shr", "St%", "Gr%", "Shr%"]
    old = list(old_times)
    new = list(new_times)
    text = (
        f"evolution on {list(attributes)} from {old[0]}..{old[-1]} "
        f"to {new[0]}..{new[-1]}"
        + (
            f" (appearances with {activity_attribute} > {min_publications})"
            if min_publications is not None
            else ""
        )
        + "\n\nAggregate nodes:\n"
        + format_table(headers, node_rows)
        + "\n\nAggregate edges:\n"
        + format_table(headers, edge_rows)
    )
    return EvolutionReport(aggregate=evo, text=text)


@dataclass(frozen=True)
class ExplorationReport:
    """Figure-13/14-style exploration summary over a threshold ladder."""

    results: dict[int, ExplorationResult]
    text: str


def exploration_report(
    graph: TemporalGraph,
    event: EventType,
    goal: Goal,
    extend: ExtendSide,
    thresholds: Sequence[int],
    entity: EntityKind = EntityKind.EDGES,
    attributes: Sequence[str] = (),
    key: Any = None,
    title: str = "",
) -> ExplorationReport:
    """Run one exploration case at several thresholds and tabulate the
    interval pairs found (the content of the paper's Figures 13/14)."""
    results: dict[int, ExplorationResult] = {}
    rows = []
    labels = graph.timeline.labels

    def span_text(side: Any) -> str:
        interval = side.interval
        if interval.is_point:
            return str(labels[interval.start])
        return f"[{labels[interval.start]}..{labels[interval.stop]}]({side.semantics})"

    for k in thresholds:
        result = explore(
            graph,
            event,
            goal,
            extend,
            k,
            entity=entity,
            attributes=attributes,
            key=key,
        )
        results[k] = result
        if result.pairs:
            for pair in result.pairs:
                rows.append(
                    [k, span_text(pair.old), span_text(pair.new), pair.count]
                )
        else:
            rows.append([k, "-", "-", 0])
    table = format_table(["k", "T_old", "T_new", "events"], rows)
    header = title or (
        f"{event}/{goal} (extend {extend}) on {list(attributes)} key={key!r}"
    )
    return ExplorationReport(results=results, text=f"{header}\n{table}")
