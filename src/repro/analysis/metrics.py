"""Evolution and structure metrics over temporal and aggregate graphs.

The paper's motivating scenarios quantify their stories — homophily of
school contacts (Section 1), turnover of collaborations (Section 5.2) —
without formalizing the metrics.  This module provides them:

* :func:`homophily` — share of aggregate edge weight connecting equal
  attribute tuples (the "children spend more time in contact with the
  same class/grade" measurement);
* :func:`turnover` — (growth + shrinkage) / total events between two
  windows, the churn the paper observes dominating DBLP collaborations;
* :func:`stability_ratio` — Jaccard stability of the entity sets of two
  windows;
* :func:`densification` — per-time-point edge/node ratios, the growth
  trend visible in Table 3.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from ..core import AggregateGraph, EvolutionAggregate, TemporalGraph
from ..errors import ValidationError

__all__ = ["homophily", "turnover", "stability_ratio", "densification"]


def homophily(aggregate: AggregateGraph) -> float:
    """Fraction of aggregate edge weight on same-tuple edges.

    1.0 means every edge connects entities with equal attribute tuples
    (perfect homophily); for random mixing over ``g`` equally likely
    groups the expectation is ``1/g``.  Raises on an edgeless aggregate.
    """
    total = aggregate.total_edge_weight()
    if total == 0:
        raise ValidationError("homophily is undefined on an edgeless aggregate")
    same = sum(
        weight
        for (source, target), weight in aggregate.edge_weights.items()
        if source == target
    )
    return same / total


def turnover(evolution: EvolutionAggregate, entity: str = "edges") -> float:
    """Share of churn (growth + shrinkage) in all evolution events.

    0.0 means everything was stable; 1.0 means nothing was.  ``entity``
    selects node or edge events.
    """
    if entity not in ("nodes", "edges"):
        raise ValidationError(f"entity must be 'nodes' or 'edges', got {entity!r}")
    totals = evolution.totals() if entity == "nodes" else evolution.edge_totals()
    if totals.total == 0:
        raise ValidationError("turnover is undefined with no evolution events")
    return (totals.growth + totals.shrinkage) / totals.total


def stability_ratio(
    graph: TemporalGraph,
    old_times: Iterable[Hashable],
    new_times: Iterable[Hashable],
    entity: str = "edges",
) -> float:
    """Jaccard similarity of the entity sets of two windows.

    An entity belongs to a window if it exists at any covered point
    (union semantics).  1.0 means the windows hold identical entity
    sets.
    """
    if entity not in ("nodes", "edges"):
        raise ValidationError(f"entity must be 'nodes' or 'edges', got {entity!r}")
    presence = (
        graph.node_presence if entity == "nodes" else graph.edge_presence
    )
    old = set(presence.rows_any(tuple(old_times)))
    new = set(presence.rows_any(tuple(new_times)))
    union_size = len(old | new)
    if union_size == 0:
        raise ValidationError("both windows are empty")
    return len(old & new) / union_size


def densification(graph: TemporalGraph) -> list[tuple[Hashable, float]]:
    """Edges-per-node at each time point (0 for empty points).

    Growing values over time reproduce the densification trend of the
    paper's Table 3 (DBLP's ratio rises from ~1.37 to ~2.20).
    """
    series = []
    for time in graph.timeline.labels:
        nodes = graph.n_nodes_at(time)
        edges = graph.n_edges_at(time)
        series.append((time, edges / nodes if nodes else 0.0))
    return series
