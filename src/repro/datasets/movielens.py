"""Synthetic stand-in for the paper's MovieLens co-rating dataset.

The paper builds a directed graph over six months (May-October 2000) of
the MovieLens ratings benchmark: users are nodes, an edge connects two
users who rated the same movie (ordered by rating precedence).  Nodes
carry three static attributes — ``gender`` (2 values), ``age`` (6 groups)
and ``occupation`` (21 values) — and one time-varying attribute, the
monthly ``rating`` average.

This module generates a synthetic graph calibrated to the paper's
Table 4: per-month node and edge counts match exactly (up to ``scale``),
including the pronounced August spike that drives the peaks in the
paper's Figures 5b, 6d and 13b.
"""

from __future__ import annotations

import numpy as np

from ..core import TemporalGraph
from .synthetic import (
    EvolvingGraphConfig,
    StaticAttributeSpec,
    VaryingAttributeSpec,
    generate_evolving_graph,
)

__all__ = [
    "MOVIELENS_MONTHS",
    "MOVIELENS_NODE_COUNTS",
    "MOVIELENS_EDGE_COUNTS",
    "movielens_config",
    "generate_movielens",
]

#: The six months of the paper's MovieLens slice.
MOVIELENS_MONTHS: tuple[str, ...] = ("May", "Jun", "Jul", "Aug", "Sep", "Oct")

#: Per-month node counts from Table 4 of the paper.
MOVIELENS_NODE_COUNTS: tuple[int, ...] = (486, 508, 778, 1309, 575, 498)

#: Per-month edge counts from Table 4 of the paper.
MOVIELENS_EDGE_COUNTS: tuple[int, ...] = (
    100202, 85334, 201800, 610050, 77216, 48516,
)

#: Six age groups, as in the MovieLens benchmark.
_AGE_GROUPS: tuple[str, ...] = ("<18", "18-24", "25-34", "35-44", "45-55", "56+")

#: 21 occupation codes.
_OCCUPATIONS: tuple[int, ...] = tuple(range(21))

_FEMALE_SHARE = 0.30


def _rating_sampler(
    rng: np.random.Generator, node_ids: np.ndarray, time_index: int
) -> np.ndarray:
    """Monthly average rating, rounded to one decimal in [1.0, 5.0].

    Each user has a persistent taste level (hash of the id) plus monthly
    noise; the rounding keeps the attribute's domain realistically sized
    (a few dozen distinct values) so that aggregation cost grows with the
    domain the way the paper's Fig. 5b shows.
    """
    hashed = (node_ids.astype(np.uint64) * np.uint64(2654435761)) % np.uint64(2**32)
    taste = 3.0 + (hashed.astype(np.float64) / 2**32)  # in [3.0, 4.0)
    raw = taste + rng.normal(0.0, 0.4, size=len(node_ids))
    clipped = np.clip(raw, 1.0, 5.0)
    return np.round(clipped, 1).astype(object)


def movielens_config(scale: float = 1.0, seed: int = 11) -> EvolvingGraphConfig:
    """The MovieLens generation recipe, calibrated to Table 4."""
    config = EvolvingGraphConfig(
        times=MOVIELENS_MONTHS,
        node_targets=MOVIELENS_NODE_COUNTS,
        edge_targets=MOVIELENS_EDGE_COUNTS,
        node_survival=0.55,
        node_return=0.25,
        edge_repeat=0.05,
        edge_scale_exponent=2.0,
        static_attrs=(
            StaticAttributeSpec(
                "gender", ("m", "f"), (1.0 - _FEMALE_SHARE, _FEMALE_SHARE)
            ),
            StaticAttributeSpec("age", _AGE_GROUPS),
            StaticAttributeSpec("occupation", _OCCUPATIONS),
        ),
        varying_attrs=(VaryingAttributeSpec("rating", _rating_sampler),),
        seed=seed,
    )
    if scale != 1.0:
        config = config.scaled(scale)
    return config


def generate_movielens(scale: float = 1.0, seed: int = 11) -> TemporalGraph:
    """Generate the synthetic MovieLens-like co-rating graph.

    At ``scale=1.0`` the per-month sizes equal Table 4 of the paper
    (~1.1M edge appearances) — generation takes a few seconds.  Tests and
    quick experiments should pass a small ``scale``.
    """
    return generate_evolving_graph(movielens_config(scale=scale, seed=seed))
