"""Saving and loading temporal graphs as directories of CSV files.

Layout (mirroring the public GraphTempo repository's file-per-array
datasets)::

    <dir>/
      nodes.csv          # presence matrix V
      edges.csv          # presence matrix E (row ids "u|v")
      static.csv         # static attribute array S
      edge_static.csv    # static edge attributes (only when present)
      attr_<name>.csv    # one file per time-varying attribute

Node ids and time labels are persisted as strings; a loader-side parser
pair restores their runtime types.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from pathlib import Path
from typing import Any

from ..core import TemporalGraph, Timeline
from ..frames import LabeledFrame, read_frame_csv, write_frame_csv

__all__ = ["save_graph", "load_graph"]

_EDGE_SEP = "|"


def _edge_to_str(edge: Hashable) -> str:
    u, v = edge  # type: ignore[misc]
    return f"{u}{_EDGE_SEP}{v}"


def save_graph(graph: TemporalGraph, directory: str | Path) -> None:
    """Persist a temporal graph into ``directory`` (created if missing)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    write_frame_csv(graph.node_presence, directory / "nodes.csv")
    edge_rows = {
        _edge_to_str(edge): values
        for edge, values in graph.edge_presence.iter_rows()
    }
    edge_frame = LabeledFrame.from_rows(edge_rows, graph.timeline.labels)
    write_frame_csv(edge_frame, directory / "edges.csv")
    write_frame_csv(graph.static_attrs, directory / "static.csv")
    if graph.edge_attrs is not None:
        edge_attr_rows = {
            _edge_to_str(edge): values
            for edge, values in graph.edge_attrs.iter_rows()
        }
        write_frame_csv(
            LabeledFrame.from_rows(edge_attr_rows, graph.edge_attrs.col_labels),
            directory / "edge_static.csv",
        )
    for name, frame in graph.varying_attrs.items():
        write_frame_csv(frame, directory / f"attr_{name}.csv")


def load_graph(
    directory: str | Path,
    node_parser: Callable[[str], Hashable] = str,
    time_parser: Callable[[str], Hashable] = str,
    value_parsers: dict[str, Callable[[str], Any]] | None = None,
) -> TemporalGraph:
    """Load a graph saved by :func:`save_graph`.

    ``node_parser`` / ``time_parser`` restore node-id and time-label
    types (e.g. ``int`` for synthetic ids and years); ``value_parsers``
    maps each time-varying attribute name to its value parser (static
    attribute values stay strings unless re-parsed by the caller).
    """
    directory = Path(directory)
    value_parsers = value_parsers or {}
    node_presence = read_frame_csv(
        directory / "nodes.csv",
        row_parser=node_parser,
        col_parser=time_parser,
        value_parser=int,
    )
    times = node_presence.col_labels

    def edge_parser(raw: str) -> tuple[Hashable, Hashable]:
        u, _, v = raw.partition(_EDGE_SEP)
        return (node_parser(u), node_parser(v))

    edge_presence = read_frame_csv(
        directory / "edges.csv",
        row_parser=edge_parser,
        col_parser=time_parser,
        value_parser=int,
    )
    static_attrs = read_frame_csv(
        directory / "static.csv", row_parser=node_parser
    )
    edge_attrs: LabeledFrame | None = None
    edge_static_path = directory / "edge_static.csv"
    if edge_static_path.exists():
        edge_attrs = read_frame_csv(edge_static_path, row_parser=edge_parser)
    varying_attrs: dict[str, LabeledFrame] = {}
    for path in sorted(directory.glob("attr_*.csv")):
        name = path.stem[len("attr_"):]
        varying_attrs[name] = read_frame_csv(
            path,
            row_parser=node_parser,
            col_parser=time_parser,
            value_parser=value_parsers.get(name, str),
        )
    return TemporalGraph(
        timeline=Timeline(times),
        node_presence=node_presence,
        edge_presence=edge_presence,
        static_attrs=static_attrs,
        varying_attrs=varying_attrs,
        validate=False,
        edge_attrs=edge_attrs,
    )
