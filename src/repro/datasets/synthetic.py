"""A configurable evolving-graph generator.

Both evaluation datasets of the paper are, for reproduction purposes,
evolving directed graphs with controlled per-time node/edge counts,
node survival between consecutive time points, edge repetition (the
source of stability events) and attribute schemas.  This module provides
that engine; :mod:`repro.datasets.dblp` and :mod:`repro.datasets.movielens`
instantiate it with the paper's Table 3 / Table 4 calibrations.

Everything is driven by a seeded :class:`numpy.random.Generator`, so a
given configuration always produces the same graph.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core import TemporalGraph, Timeline
from ..frames import LabeledFrame
from ..errors import DatasetError

__all__ = [
    "StaticAttributeSpec",
    "VaryingAttributeSpec",
    "EvolvingGraphConfig",
    "generate_evolving_graph",
    "hash_uniform",
]


def hash_uniform(node_ids: np.ndarray) -> np.ndarray:
    """A deterministic per-node uniform value in [0, 1).

    Knuth multiplicative hash of the integer node id.  Attribute
    samplers and the survival model share this value, so "persistent"
    node traits (a productive author, a loyal user) line up with
    persistent membership — the correlation the paper's Fig. 12
    stability percentages rely on.
    """
    hashed = (np.asarray(node_ids, dtype=np.uint64) * np.uint64(2654435761)) % np.uint64(
        2**32
    )
    return hashed.astype(np.float64) / 2**32


@dataclass(frozen=True)
class StaticAttributeSpec:
    """A static node attribute drawn once per node.

    ``values`` are the attribute's domain; ``probabilities`` (optional)
    weight the draw and must sum to 1.
    """

    name: str
    values: tuple[Any, ...]
    probabilities: tuple[float, ...] | None = None

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        out = rng.choice(
            np.array(self.values, dtype=object), size=count, p=self.probabilities
        )
        return np.asarray(out, dtype=object)


@dataclass(frozen=True)
class VaryingAttributeSpec:
    """A time-varying node attribute drawn per (node, time) appearance.

    ``sampler(rng, node_ids, time_index)`` returns one value per id in
    ``node_ids`` (the nodes active at that time point).  Receiving the
    ids lets samplers give nodes *persistent* traits (e.g. consistently
    productive authors, which the paper's Fig. 12 stability percentages
    depend on); receiving the time index lets the domain vary per time
    point (DBLP's publications attribute has 7-18 distinct values per
    year, which drives the Fig. 5 aggregation-cost differences).
    """

    name: str
    sampler: Callable[[np.random.Generator, np.ndarray, int], np.ndarray]


@dataclass(frozen=True)
class EvolvingGraphConfig:
    """Full recipe for one evolving graph.

    Parameters
    ----------
    times:
        Ordered time-point labels.
    node_targets / edge_targets:
        Desired number of active nodes / edges at each time point (same
        length as ``times``).
    node_survival:
        Fraction of the previous time point's active nodes that stay
        active (stability of nodes).
    node_return:
        Fraction of currently-inactive *previously seen* nodes eligible
        to return instead of minting new node ids.
    edge_repeat:
        Fraction of a time point's edges re-drawn from the previous time
        point's edges whose endpoints are still active (stability of
        edges); the rest are fresh random pairs.
    persistence:
        Strength of the correlation between a node's hash trait
        (:func:`hash_uniform`) and its survival.  0 means survival is
        uniform; larger values make the same nodes survive time point
        after time point.
    edge_persistence:
        Strength of the per-edge repeat bias.  0 picks repeated edges
        uniformly from the previous time point; larger values
        concentrate repetition on a hash-stable subset, producing the
        heavy tail of long-lived edges real collaboration networks show
        (the paper's Fig. 7 sweep relies on a common edge surviving 18
        DBLP years).
    edge_scale_exponent:
        How edge targets scale when :meth:`scaled` shrinks the graph:
        ``m' = m * scale**exponent``.  1.0 (default) scales linearly —
        right for sparse graphs whose degree is roughly constant; 2.0
        preserves *density* — right for dense co-occurrence graphs like
        the MovieLens co-rating network (~40% of all ordered pairs),
        where linear scaling would saturate into a complete graph.
    static_attrs / varying_attrs:
        Attribute schemas.
    seed:
        RNG seed; two runs with equal configs are identical.
    """

    times: tuple[Hashable, ...]
    node_targets: tuple[int, ...]
    edge_targets: tuple[int, ...]
    node_survival: float = 0.7
    node_return: float = 0.1
    edge_repeat: float = 0.3
    persistence: float = 0.0
    edge_persistence: float = 0.0
    edge_scale_exponent: float = 1.0
    static_attrs: tuple[StaticAttributeSpec, ...] = ()
    varying_attrs: tuple[VaryingAttributeSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.node_targets) != len(self.times):
            raise DatasetError("node_targets must match times in length")
        if len(self.edge_targets) != len(self.times):
            raise DatasetError("edge_targets must match times in length")
        if not 0.0 <= self.node_survival <= 1.0:
            raise DatasetError("node_survival must be in [0, 1]")
        if not 0.0 <= self.edge_repeat <= 1.0:
            raise DatasetError("edge_repeat must be in [0, 1]")
        for count in self.node_targets:
            if count < 1:
                raise DatasetError("every time point needs at least one node")

    def scaled(self, scale: float) -> "EvolvingGraphConfig":
        """The same recipe with node/edge targets multiplied by ``scale``.

        Used to run the full benchmark suite on laptop-friendly fractions
        of the paper's dataset sizes while preserving every structural
        ratio (survival, repetition, attribute domains).
        """
        if scale <= 0:
            raise DatasetError("scale must be positive")
        node_targets = tuple(max(2, round(n * scale)) for n in self.node_targets)
        edge_targets = tuple(
            max(1, round(m * scale**self.edge_scale_exponent))
            for m in self.edge_targets
        )
        return EvolvingGraphConfig(
            times=self.times,
            node_targets=node_targets,
            edge_targets=edge_targets,
            node_survival=self.node_survival,
            node_return=self.node_return,
            edge_repeat=self.edge_repeat,
            persistence=self.persistence,
            edge_persistence=self.edge_persistence,
            edge_scale_exponent=self.edge_scale_exponent,
            static_attrs=self.static_attrs,
            varying_attrs=self.varying_attrs,
            seed=self.seed,
        )


def _sample_active_sets(
    config: EvolvingGraphConfig, rng: np.random.Generator
) -> tuple[list[np.ndarray], int]:
    """Choose the active node-id set per time point.

    Returns the per-time active id arrays and the total id count.  Ids
    are dense integers assigned in first-appearance order.
    """
    next_id = 0
    active_sets: list[np.ndarray] = []
    previous: np.ndarray | None = None
    retired: list[int] = []
    for target in config.node_targets:
        members: list[int] = []
        if previous is not None and len(previous):
            survivor_count = min(target, round(config.node_survival * len(previous)))
            if config.persistence > 0:
                weights = np.exp(config.persistence * hash_uniform(previous))
                probabilities = weights / weights.sum()
            else:
                probabilities = None
            survivors = rng.choice(
                previous, size=survivor_count, replace=False, p=probabilities
            )
            members.extend(int(n) for n in survivors)
            gone = set(int(n) for n in previous) - set(members)
            retired.extend(gone)
        shortfall = target - len(members)
        if shortfall > 0 and retired and config.node_return > 0:
            return_count = min(
                shortfall, round(config.node_return * len(retired))
            )
            if return_count:
                returners = rng.choice(
                    np.array(sorted(set(retired))), size=return_count, replace=False
                )
                members.extend(int(n) for n in returners)
                retired = [n for n in retired if n not in set(int(x) for x in returners)]
                shortfall = target - len(members)
        if shortfall > 0:
            members.extend(range(next_id, next_id + shortfall))
            next_id += shortfall
        current = np.array(sorted(set(members)), dtype=np.int64)
        active_sets.append(current)
        previous = current
    return active_sets, next_id


def _sample_edges(
    config: EvolvingGraphConfig,
    rng: np.random.Generator,
    active_sets: Sequence[np.ndarray],
) -> dict[tuple[int, int], set[int]]:
    """Choose directed edges per time point with controlled repetition.

    Returns ``edge -> set of time indices``.  Within one time point each
    ordered pair occurs at most once (the datasets "do not contain
    multiple edges in the unit of time").
    """
    presence: dict[tuple[int, int], set[int]] = {}
    previous_edges: list[tuple[int, int]] = []
    for t_index, (target, active) in enumerate(zip(config.edge_targets, active_sets)):
        chosen: set[tuple[int, int]] = set()
        active_set = set(int(n) for n in active)
        if previous_edges and config.edge_repeat > 0:
            eligible = [
                e for e in previous_edges if e[0] in active_set and e[1] in active_set
            ]
            repeat_count = min(len(eligible), round(config.edge_repeat * target))
            if repeat_count:
                if config.edge_persistence > 0:
                    pair_codes = np.array(
                        [u * 1_000_003 + v for u, v in eligible], dtype=np.int64
                    )
                    sources = np.array([u for u, _ in eligible], dtype=np.int64)
                    targets = np.array([v for _, v in eligible], dtype=np.int64)
                    # A long-lived edge needs both endpoints to be
                    # long-lived nodes: blend the edge's own hash trait
                    # with the weaker endpoint's survival trait so the
                    # persistent-edge set sits inside the persistent-node
                    # population.
                    endpoint_trait = np.minimum(
                        hash_uniform(sources), hash_uniform(targets)
                    )
                    trait = 0.5 * hash_uniform(pair_codes) + 0.5 * endpoint_trait
                    weights = np.exp(config.edge_persistence * trait)
                    probabilities = weights / weights.sum()
                else:
                    probabilities = None
                picks = rng.choice(
                    len(eligible), size=repeat_count, replace=False, p=probabilities
                )
                for p in picks:
                    chosen.add(eligible[int(p)])
        max_edges = len(active) * (len(active) - 1)
        target = min(target, max_edges)
        # Fresh pairs: draw in vectorized batches, reject self loops and
        # duplicates, until the target is met.
        while len(chosen) < target:
            needed = target - len(chosen)
            batch = max(64, int(needed * 1.3))
            sources = rng.choice(active, size=batch)
            targets = rng.choice(active, size=batch)
            for u, v in zip(sources.tolist(), targets.tolist()):
                if u == v:
                    continue
                pair = (int(u), int(v))
                if pair in chosen:
                    continue
                chosen.add(pair)
                if len(chosen) >= target:
                    break
        for pair in chosen:
            presence.setdefault(pair, set()).add(t_index)
        previous_edges = list(chosen)
    return presence


def generate_evolving_graph(config: EvolvingGraphConfig) -> TemporalGraph:
    """Generate a temporal attributed graph from a recipe.

    The output satisfies every :class:`~repro.core.graph.TemporalGraph`
    invariant by construction (edges only ever connect simultaneously
    active nodes), so validation is skipped for speed.
    """
    rng = np.random.default_rng(config.seed)
    active_sets, n_nodes = _sample_active_sets(config, rng)
    times = config.times
    n_times = len(times)

    node_values = np.zeros((n_nodes, n_times), dtype=np.uint8)
    for t_index, active in enumerate(active_sets):
        node_values[active, t_index] = 1
    node_ids = tuple(range(n_nodes))
    node_presence = LabeledFrame(node_ids, times, node_values)

    static_names = tuple(spec.name for spec in config.static_attrs)
    static_values = np.empty((n_nodes, len(static_names)), dtype=object)
    for col, spec in enumerate(config.static_attrs):
        static_values[:, col] = spec.sample(rng, n_nodes)
    static_attrs = LabeledFrame(node_ids, static_names, static_values)

    varying_attrs: dict[str, LabeledFrame] = {}
    for spec in config.varying_attrs:
        values = np.full((n_nodes, n_times), None, dtype=object)
        for t_index, active in enumerate(active_sets):
            drawn = spec.sampler(rng, active, t_index)
            values[active, t_index] = np.asarray(drawn, dtype=object)
        varying_attrs[spec.name] = LabeledFrame(node_ids, times, values)

    edge_presence_map = _sample_edges(config, rng, active_sets)
    edge_ids = tuple(sorted(edge_presence_map))
    edge_values = np.zeros((len(edge_ids), n_times), dtype=np.uint8)
    for row, edge in enumerate(edge_ids):
        for t_index in edge_presence_map[edge]:
            edge_values[row, t_index] = 1
    edge_presence = LabeledFrame(edge_ids, times, edge_values)

    return TemporalGraph(
        timeline=Timeline(times),
        node_presence=node_presence,
        edge_presence=edge_presence,
        static_attrs=static_attrs,
        varying_attrs=varying_attrs,
        validate=False,
    )
