"""Synthetic school contact network (the paper's Section 1 scenario).

The introduction motivates GraphTempo with face-to-face proximity data
in a primary school (Gemmetto et al.'s influenza-mitigation study):
contacts concentrate within a class and grade, and *targeted class
closure* is evaluated by the shrinkage of contacts it causes.  This
generator produces that shape:

* pupils carry static ``grade`` and ``klass`` attributes;
* contacts are drawn with controlled **homophily** — a configurable
  share stays within the same class, a further share within the same
  grade, the rest mixes freely;
* an optional **closure** zeroes one grade's contact budget during a
  span of days, so mitigation analyses (shrinkage during, growth after)
  have a ground truth to find.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import TemporalGraph, TemporalGraphBuilder
from ..errors import DatasetError

__all__ = ["ContactNetworkConfig", "generate_contacts"]


@dataclass(frozen=True)
class ContactNetworkConfig:
    """Recipe for a school contact network.

    Parameters
    ----------
    days:
        Number of school days (time points, labeled ``day1..dayN``).
    pupils_per_class:
        Class size; the school has ``len(grades) * classes_per_grade``
        classes.
    grades / classes_per_grade:
        The static attribute domains.
    contacts_per_day:
        Contact (edge) budget per ordinary day.
    class_share / grade_share:
        Fraction of contacts drawn within the same class, and within
        the same grade but another class; the remainder mixes across
        grades.  Must satisfy ``class_share + grade_share <= 1``.
    closed_grade / closure_days:
        Optional mitigation: during the given day indices (0-based),
        pupils of ``closed_grade`` participate in no contacts.
    seed:
        RNG seed (generation is deterministic).
    """

    days: int = 8
    pupils_per_class: int = 20
    grades: tuple[str, ...] = ("1st", "2nd", "3rd")
    classes_per_grade: int = 2
    contacts_per_day: int = 600
    class_share: float = 0.55
    grade_share: float = 0.25
    closed_grade: str | None = None
    closure_days: tuple[int, ...] = ()
    seed: int = 23

    def __post_init__(self) -> None:
        if self.days < 1:
            raise DatasetError("at least one day is required")
        if not 0 <= self.class_share + self.grade_share <= 1:
            raise DatasetError("class_share + grade_share must be within [0, 1]")
        if self.closed_grade is not None and self.closed_grade not in self.grades:
            raise DatasetError(f"unknown grade to close: {self.closed_grade!r}")
        for day in self.closure_days:
            if not 0 <= day < self.days:
                raise DatasetError(f"closure day {day} outside 0..{self.days - 1}")


def _draw_pair(
    rng: np.random.Generator,
    config: ContactNetworkConfig,
    classmates: np.ndarray,
    grademates: np.ndarray,
    everyone: np.ndarray,
) -> int:
    roll = rng.random()
    if roll < config.class_share and len(classmates):
        return int(rng.choice(classmates))
    if roll < config.class_share + config.grade_share and len(grademates):
        return int(rng.choice(grademates))
    other = int(rng.choice(everyone))
    return other


def generate_contacts(config: ContactNetworkConfig | None = None) -> TemporalGraph:
    """Generate the contact network described by ``config``."""
    config = config or ContactNetworkConfig()
    rng = np.random.default_rng(config.seed)
    days = tuple(f"day{i + 1}" for i in range(config.days))

    builder = TemporalGraphBuilder(days, static=["grade", "klass"])
    pupil_grade: list[str] = []
    pupil_class: list[str] = []
    pupil = 0
    for grade in config.grades:
        for class_index in range(config.classes_per_grade):
            klass = chr(ord("A") + class_index)
            for _ in range(config.pupils_per_class):
                builder.add_node(pupil, {"grade": grade, "klass": klass})
                pupil_grade.append(grade)
                pupil_class.append(f"{grade}-{klass}")
                pupil += 1
    n_pupils = pupil
    grade_arr = np.array(pupil_grade)
    class_arr = np.array(pupil_class)
    all_ids = np.arange(n_pupils)

    classmates_of = {
        i: all_ids[(class_arr == class_arr[i]) & (all_ids != i)]
        for i in range(n_pupils)
    }
    grademates_of = {
        i: all_ids[
            (grade_arr == grade_arr[i])
            & (class_arr != class_arr[i])
        ]
        for i in range(n_pupils)
    }

    for day_index, day in enumerate(days):
        closed = (
            config.closed_grade
            if day_index in config.closure_days
            else None
        )
        attending = all_ids[grade_arr != closed] if closed else all_ids
        attending_set = set(int(i) for i in attending)
        for i in attending:
            builder.set_node_presence(int(i), day)
        chosen: set[tuple[int, int]] = set()
        attempts = 0
        while len(chosen) < config.contacts_per_day and attempts < config.contacts_per_day * 10:
            attempts += 1
            source = int(rng.choice(attending))
            target = _draw_pair(
                rng, config,
                classmates_of[source], grademates_of[source], all_ids,
            )
            if target == source or target not in attending_set:
                continue
            pair = (source, target)
            if pair in chosen:
                continue
            chosen.add(pair)
        for source, target in sorted(chosen):
            builder.add_edge(source, target, [day])
    return builder.build()
