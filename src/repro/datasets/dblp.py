"""Synthetic stand-in for the paper's DBLP collaboration dataset.

The original dataset (Section 5) is a directed co-authorship graph over
21 years (2000-2020) restricted to 21 data-management conferences, with a
static ``gender`` attribute and a time-varying ``publications`` count.
The raw crawl is not redistributable and no network access is available
here, so this module generates a synthetic graph *calibrated to the
paper's own Table 3*: per-year node and edge counts match the table
exactly (up to the ``scale`` factor), author survival across years and
collaboration repetition are tuned so the qualitative Section 5.2
behaviours appear (high node stability among active authors, high edge
turnover, rarer female-female collaborations).
"""

from __future__ import annotations

import numpy as np

from ..core import TemporalGraph
from .synthetic import (
    EvolvingGraphConfig,
    StaticAttributeSpec,
    VaryingAttributeSpec,
    generate_evolving_graph,
    hash_uniform,
)

__all__ = ["DBLP_YEARS", "DBLP_NODE_COUNTS", "DBLP_EDGE_COUNTS", "dblp_config", "generate_dblp"]

#: The 21 years of the paper's DBLP slice.
DBLP_YEARS: tuple[int, ...] = tuple(range(2000, 2021))

#: Per-year node counts from Table 3 of the paper.
DBLP_NODE_COUNTS: tuple[int, ...] = (
    1708, 2165, 1761, 2827, 3278, 4466, 4730, 5193, 5501, 5363, 6236,
    6535, 6769, 7457, 7035, 8581, 8966, 9660, 11037, 12377, 12996,
)

#: Per-year edge counts from Table 3 of the paper.
DBLP_EDGE_COUNTS: tuple[int, ...] = (
    2336, 2949, 2458, 4130, 4821, 7145, 7296, 7620, 8528, 8740, 10163,
    10090, 11871, 12989, 12072, 15844, 16873, 18470, 21197, 27455, 28546,
)

#: Fraction of female authors; chosen so that female-female collaborations
#: are a small minority, as in the paper's Fig. 12/14 observations.
_FEMALE_SHARE = 0.22

#: Publications domain sizes per year grow from 7 to 18 distinct values,
#: the range the paper reports ("publications vary from 7 to 18").
_PUBLICATION_DOMAINS: tuple[int, ...] = tuple(
    7 + round(11 * i / (len(DBLP_YEARS) - 1)) for i in range(len(DBLP_YEARS))
)


def _author_base_productivity(node_ids: np.ndarray) -> np.ndarray:
    """A persistent per-author productivity level derived from the node
    id hash, so the same author is consistently productive (or not)
    across years.  This persistence — combined with the config's
    ``persistence`` survival bias, which shares the same hash — is what
    makes high-activity authors (#publications > 4) largely *stable*
    across a decade, the paper's Fig. 12 observation."""
    uniform = hash_uniform(node_ids)
    # Inverse-CDF of a geometric(0.5): most authors publish little, a
    # stable minority publishes a lot.
    base = np.floor(np.log1p(-uniform * 0.999) / np.log(0.5)).astype(np.int64) + 1
    return base


def _publications_sampler(
    rng: np.random.Generator, node_ids: np.ndarray, time_index: int
) -> np.ndarray:
    """Yearly publication counts: a persistent per-author base plus
    yearly noise, bounded by the year's domain size so the number of
    distinct values matches the paper (7-18 per year)."""
    domain = _PUBLICATION_DOMAINS[time_index]
    base = _author_base_productivity(node_ids)
    noise = rng.integers(-1, 2, size=len(node_ids))
    return np.clip(base + noise, 1, domain).astype(object)


def dblp_config(scale: float = 1.0, seed: int = 7) -> EvolvingGraphConfig:
    """The DBLP generation recipe, calibrated to Table 3.

    ``scale`` multiplies every per-year node/edge target (1.0 = the
    paper's sizes); ``seed`` fixes the RNG.
    """
    config = EvolvingGraphConfig(
        times=DBLP_YEARS,
        node_targets=DBLP_NODE_COUNTS,
        edge_targets=DBLP_EDGE_COUNTS,
        node_survival=0.62,
        node_return=0.08,
        edge_repeat=0.12,
        persistence=8.0,
        edge_persistence=16.0,
        static_attrs=(
            StaticAttributeSpec(
                "gender", ("m", "f"), (1.0 - _FEMALE_SHARE, _FEMALE_SHARE)
            ),
        ),
        varying_attrs=(
            VaryingAttributeSpec("publications", _publications_sampler),
        ),
        seed=seed,
    )
    if scale != 1.0:
        config = config.scaled(scale)
    return config


def generate_dblp(scale: float = 1.0, seed: int = 7) -> TemporalGraph:
    """Generate the synthetic DBLP-like collaboration graph.

    At ``scale=1.0`` the per-year sizes equal Table 3 of the paper.  For
    fast tests use a small scale (e.g. ``0.02``).
    """
    return generate_evolving_graph(dblp_config(scale=scale, seed=seed))
