"""The paper's running example (Figure 1 / Table 2).

Five authors over three time points ``t0, t1, t2`` with a static
``gender`` attribute and a time-varying ``publications`` attribute.  Node
presence and attribute values are taken verbatim from Table 2 of the
paper; the figure's edge drawing is not machine-readable in our source,
so the edge set is a documented reconstruction consistent with every
weight the text states (e.g. aggregate node ``(f, 1)`` having DIST weight
3 and ALL weight 4 on the union of ``t0, t1``, and evolution weights
stability/growth/shrinkage = 1/1/1).
"""

from __future__ import annotations

from ..core import TemporalGraph, TemporalGraphBuilder

__all__ = ["paper_example", "TIMES", "GENDER", "PUBLICATIONS", "PRESENCE", "EDGES"]

#: Time points of Figure 1.
TIMES = ("t0", "t1", "t2")

#: Static gender attribute (Table 2, array S).
GENDER = {"u1": "m", "u2": "f", "u3": "f", "u4": "f", "u5": "m"}

#: Node presence (Table 2, array V): node -> time points it exists at.
PRESENCE = {
    "u1": ("t0", "t1"),
    "u2": ("t0", "t1", "t2"),
    "u3": ("t0",),
    "u4": ("t0", "t1", "t2"),
    "u5": ("t2",),
}

#: Time-varying publication counts (Table 2, array A); None = absent.
PUBLICATIONS = {
    "u1": {"t0": 3, "t1": 1},
    "u2": {"t0": 1, "t1": 1, "t2": 1},
    "u3": {"t0": 1},
    "u4": {"t0": 2, "t1": 1, "t2": 1},
    "u5": {"t2": 3},
}

#: Reconstructed directed edge set: edge -> active time points.
EDGES = {
    ("u1", "u2"): ("t0", "t1"),
    ("u2", "u3"): ("t0",),
    ("u1", "u4"): ("t0",),
    ("u4", "u2"): ("t1", "t2"),
    ("u5", "u4"): ("t2",),
    ("u5", "u2"): ("t2",),
}


def paper_example() -> TemporalGraph:
    """Build the Figure 1 temporal attributed graph."""
    builder = TemporalGraphBuilder(
        TIMES, static=["gender"], varying=["publications"]
    )
    for node, gender in GENDER.items():
        builder.add_node(node, {"gender": gender})
        for time in PRESENCE[node]:
            builder.set_node_presence(
                node, time, publications=PUBLICATIONS[node][time]
            )
    for (u, v), times in EDGES.items():
        builder.add_edge(u, v, times)
    return builder.build()
