"""Datasets: the paper's running example plus synthetic stand-ins for
the DBLP and MovieLens evaluation graphs (calibrated to Tables 3/4)."""

from .contacts import ContactNetworkConfig, generate_contacts
from .dblp import (
    DBLP_EDGE_COUNTS,
    DBLP_NODE_COUNTS,
    DBLP_YEARS,
    dblp_config,
    generate_dblp,
)
from .example import paper_example
from .io import load_graph, save_graph
from .movielens import (
    MOVIELENS_EDGE_COUNTS,
    MOVIELENS_MONTHS,
    MOVIELENS_NODE_COUNTS,
    generate_movielens,
    movielens_config,
)
from .synthetic import (
    EvolvingGraphConfig,
    StaticAttributeSpec,
    VaryingAttributeSpec,
    generate_evolving_graph,
)

__all__ = [
    "paper_example",
    "generate_contacts",
    "ContactNetworkConfig",
    "generate_dblp",
    "dblp_config",
    "DBLP_YEARS",
    "DBLP_NODE_COUNTS",
    "DBLP_EDGE_COUNTS",
    "generate_movielens",
    "movielens_config",
    "MOVIELENS_MONTHS",
    "MOVIELENS_NODE_COUNTS",
    "MOVIELENS_EDGE_COUNTS",
    "generate_evolving_graph",
    "EvolvingGraphConfig",
    "StaticAttributeSpec",
    "VaryingAttributeSpec",
    "save_graph",
    "load_graph",
]
