"""Command-line interface: regenerate the paper's tables and figures.

Examples
--------
Print the dataset size tables (Tables 3/4)::

    python -m repro datasets --scale 0.1

Regenerate a performance figure's series (Figures 5-11)::

    python -m repro figure 6 --dataset dblp --scale 0.05

The qualitative experiments (Figures 12-14)::

    python -m repro evolution --scale 0.05
    python -m repro explore --dataset movielens --scale 0.05
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from pathlib import Path

from .analysis import (
    dataset_report,
    densification,
    evolution_report,
    exploration_report,
    homophily,
    stability_ratio,
    turnover,
)
from .bench import (
    fig5_timepoint_aggregation,
    fig6_union_aggregation,
    fig7_intersection_aggregation,
    fig8_difference_old_new,
    fig9_difference_new_old,
    fig10_materialized_union_speedup,
    fig11_attribute_rollup_speedup,
    format_series,
)
from .core import (
    TemporalGraph,
    TimeHierarchy,
    aggregate,
    aggregate_evolution,
    coarsen,
    union,
)
from .datasets import generate_dblp, generate_movielens
from .exploration import (
    EventType,
    ExtendSide,
    Goal,
    explore_groups,
    suggest_threshold,
    threshold_ladder,
)
from .interop import aggregate_to_dot, evolution_to_dot, write_dot
from .olap import TemporalGraphCube, greedy_view_selection

__all__ = ["main", "build_parser"]

_FF_KEY = (("f",), ("f",))


def _load(dataset: str, scale: float) -> TemporalGraph:
    if dataset == "dblp":
        return generate_dblp(scale=scale)
    if dataset == "movielens":
        return generate_movielens(scale=scale)
    raise SystemExit(f"unknown dataset {dataset!r} (use dblp or movielens)")


def _attribute_sets(dataset: str) -> list[list[str]]:
    if dataset == "dblp":
        return [["gender"], ["publications"], ["gender", "publications"]]
    return [["gender"], ["rating"], ["gender", "rating"],
            ["gender", "age", "occupation", "rating"]]


def _run_figure(args: argparse.Namespace) -> None:
    graph = _load(args.dataset, args.scale)
    attribute_sets = _attribute_sets(args.dataset)
    drivers = {
        5: lambda: fig5_timepoint_aggregation(graph, attribute_sets, repeats=args.repeats),
        6: lambda: fig6_union_aggregation(
            graph, attribute_sets[:2], repeats=args.repeats, split=args.split
        ),
        7: lambda: fig7_intersection_aggregation(
            graph, attribute_sets[:2], repeats=args.repeats, split=args.split
        ),
        8: lambda: fig8_difference_old_new(
            graph, attribute_sets[:2], repeats=args.repeats, split=args.split
        ),
        9: lambda: fig9_difference_new_old(
            graph, attribute_sets[:2], repeats=args.repeats, split=args.split
        ),
        10: lambda: fig10_materialized_union_speedup(
            graph, attribute_sets[:2], repeats=args.repeats
        ),
        11: lambda: fig11_attribute_rollup_speedup(
            graph,
            attribute_sets[-1],
            attribute_sets[:2],
            repeats=args.repeats,
        ),
    }
    if args.number not in drivers:
        raise SystemExit(f"figure must be one of {sorted(drivers)}")
    series = drivers[args.number]()
    print(
        format_series(
            series.series,
            series.x_labels,
            x_name=series.x_name,
            value_name=series.value_name,
            title=f"{series.name} — {args.dataset} @ scale {args.scale}",
        )
    )


def _run_datasets(args: argparse.Namespace) -> None:
    print(dataset_report(generate_dblp(scale=args.scale), "DBLP (Table 3 shape)"))
    print()
    print(
        dataset_report(
            generate_movielens(scale=args.scale), "MovieLens (Table 4 shape)"
        )
    )


def _run_evolution(args: argparse.Namespace) -> None:
    graph = _load("dblp", args.scale)
    years = graph.timeline.labels
    half = len(years) // 2
    first_decade, mid = years[:half], years[half]
    report = evolution_report(
        graph,
        first_decade,
        [mid],
        ["gender"],
        min_publications=args.min_publications,
    )
    print(report.text)
    second_decade, last = years[half : len(years) - 1], years[-1]
    report = evolution_report(
        graph,
        second_decade,
        [last],
        ["gender"],
        min_publications=args.min_publications,
    )
    print()
    print(report.text)


def _run_explore(args: argparse.Namespace) -> None:
    graph = _load(args.dataset, args.scale)
    cases = [
        (EventType.STABILITY, Goal.MAXIMAL, ExtendSide.NEW, "max", (1.0, 0.5, 0.05)),
        (EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, "max", (1.0, 0.5, 0.1)),
        (EventType.SHRINKAGE, Goal.MINIMAL, ExtendSide.OLD, "min", (1.0, 2.0, 5.0)),
    ]
    for event, goal, extend, mode, factors in cases:
        w_th = suggest_threshold(
            graph, event, mode=mode, attributes=["gender"], key=_FF_KEY
        )
        ladder = sorted(set(threshold_ladder(w_th, factors)))
        report = exploration_report(
            graph,
            event,
            goal,
            extend,
            ladder,
            attributes=["gender"],
            key=_FF_KEY,
            title=(
                f"{event}/{goal} for female-female edges "
                f"(w_th={w_th}) — {args.dataset}"
            ),
        )
        print(report.text)
        print()


def _run_groups(args: argparse.Namespace) -> None:
    graph = _load(args.dataset, args.scale)
    result = explore_groups(
        graph,
        EventType(args.event),
        Goal(args.goal),
        ExtendSide(args.extend),
        args.k,
        attributes=["gender"],
    )
    print(
        f"{args.event}/{args.goal} group sweep on gender pairs, k={args.k} "
        f"({result.evaluations} chain evaluations):"
    )
    for key in result.interesting_groups:
        best = result.best_pair(key)
        print(f"  {key}: best pair {best}")
    if not result.interesting_groups:
        print("  no group reaches the threshold")


def _run_zoom(args: argparse.Namespace) -> None:
    graph = _load(args.dataset, args.scale)
    hierarchy = TimeHierarchy.regular(graph.timeline.labels, width=args.width)
    for semantics in ("union", "intersection"):
        coarse = coarsen(graph, hierarchy, semantics)
        print(
            dataset_report(
                coarse, f"{args.dataset} zoomed out x{args.width} ({semantics})"
            )
        )
        print()


def _run_olap(args: argparse.Namespace) -> None:
    graph = _load(args.dataset, args.scale)
    dims = list(graph.attribute_names)
    selection = greedy_view_selection(graph, dims, budget=args.budget)
    print(f"greedy view selection (budget {args.budget}) over {dims}:")
    for view in selection.selected:
        print(f"  materialize {view}")
    cube = TemporalGraphCube(graph)
    for view in selection.selected:
        cube.materialize(view, distinct=False)
    for attr in dims[:2]:
        cube.cuboid([attr], distinct=False)
    print(f"cube stats after sample queries: {cube.stats}")


def _run_metrics(args: argparse.Namespace) -> None:
    graph = _load(args.dataset, args.scale)
    labels = graph.timeline.labels
    half = len(labels) // 2
    agg = aggregate(union(graph, labels), ["gender"], distinct=False)
    evo = aggregate_evolution(graph, labels[:half], labels[half:], ["gender"])
    print(f"gender homophily over the full window: {homophily(agg):.3f}")
    print(f"edge turnover between halves: {turnover(evo):.3f}")
    print(
        "edge stability ratio between halves: "
        f"{stability_ratio(graph, labels[:half], labels[half:]):.3f}"
    )
    print("densification (edges per node):")
    for time, value in densification(graph):
        print(f"  {time}: {value:.2f}")


def _run_dot(args: argparse.Namespace) -> None:
    graph = _load(args.dataset, args.scale)
    labels = graph.timeline.labels
    agg = aggregate(
        union(graph, labels[: len(labels) // 2]), ["gender"], distinct=True
    )
    evo = aggregate_evolution(graph, [labels[0]], [labels[1]], ["gender"])
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    agg_path = write_dot(aggregate_to_dot(agg), out / "aggregate.dot")
    evo_path = write_dot(evolution_to_dot(evo), out / "evolution.dot")
    print(f"wrote {agg_path} and {evo_path}")


def _run_timeseries(args: argparse.Namespace) -> None:
    from .analysis import event_series, largest_shift, zscore_anomalies
    from .exploration import EventType as _EventType

    graph = _load(args.dataset, args.scale)
    for event in _EventType:
        series = event_series(
            graph, event, attributes=["gender"], key=_FF_KEY
        )
        print(f"--- {event} of female-female edges ---")
        print(series.to_table())
        if len(series) >= 2:
            index, delta = largest_shift(series)
            old, new = series.steps[index]
            print(f"largest shift: {delta:+d} at {old} -> {new}")
        anomalies = zscore_anomalies(series, threshold=args.threshold)
        for i, z in anomalies:
            old, new = series.steps[i]
            print(f"anomaly: {old} -> {new} (z = {z:+.2f})")
        print()


def _run_fuzz(args: argparse.Namespace) -> None:
    from .errors import ConfigurationError
    from .testing import law_registry, run_fuzz

    registry = law_registry()
    if args.list_laws:
        for law in registry.values():
            hostility = "" if law.hostile_safe else "  [skipped on hostile graphs]"
            print(f"{law.name}: {law.description}{hostility}")
        return
    try:
        report = run_fuzz(
            seed=args.seed,
            cases=args.cases,
            laws=args.laws or None,
            out_dir=args.out,
            shrink=not args.no_shrink,
        )
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from exc
    print(report.summary())
    for failure in report.failures:
        print(f"  {failure}")
    if not report.ok:
        raise SystemExit(1)


def _run_stream(args: argparse.Namespace) -> None:
    import time

    from .core.updates import split_history
    from .materialize.streaming import AggregateTotalsView
    from .streaming import EvolutionView, StreamingStore
    from .testing import graph_to_maps

    graph = _load(args.dataset, args.scale)
    attrs = _attribute_sets(args.dataset)[0]
    initial, updates = split_history(graph)
    totals = AggregateTotalsView([tuple(attrs)])
    overlay = EvolutionView(attrs, old_times=initial.timeline.labels)
    store = StreamingStore(initial, views=[totals, overlay])
    start = time.perf_counter()
    for update in updates:
        store.append_snapshot(update)
    elapsed = time.perf_counter() - start
    rate = len(updates) / elapsed if elapsed else float("inf")
    print(
        f"streamed {args.dataset} @ scale {args.scale}: "
        f"{len(updates)} appends in {elapsed:.3f}s ({rate:.1f} appends/s), "
        f"final version {store.version}"
    )
    if graph_to_maps(store.graph) != graph_to_maps(graph):
        raise SystemExit("replayed graph differs from the original history")
    direct = aggregate(graph, attrs, distinct=False)
    totals_agg = totals.union_total(attrs)
    if dict(totals_agg.node_weights) != dict(direct.node_weights):
        raise SystemExit("maintained totals differ from a from-scratch aggregate")
    evo = overlay.current()
    print(
        f"replay identity holds; {attrs} totals match from-scratch "
        f"({len(totals_agg.node_weights)} groups); evolution overlay spans "
        f"{len(evo.old_times)} old + {len(evo.new_times)} appended points"
    )


def _run_serve(args: argparse.Namespace) -> None:
    from .obs.metrics import get_metrics
    from .serving import QueryServer, mixed_queries, run_workload

    graph = _load(args.dataset, args.scale)
    attrs = [name for group in _attribute_sets(args.dataset) for name in group]
    queries = mixed_queries(graph, list(dict.fromkeys(attrs)))
    capacity = 0 if args.no_cache else args.cache
    with QueryServer(graph, cache_capacity=capacity) as server:
        report = run_workload(
            server.serve, queries, requests=args.requests, threads=args.threads
        )
    cache_note = "cache off" if capacity == 0 else f"cache {capacity}"
    print(
        f"served {args.dataset} @ scale {args.scale} ({cache_note}, "
        f"{len(queries)} distinct queries): {report.describe()}"
    )
    counters = get_metrics().snapshot()["counters"]
    for name in sorted(counters):
        if name.startswith("serving."):
            print(f"  {name}: {counters[name]}")


def _run_check(args: argparse.Namespace) -> None:
    from .diagnostics import check_graph, format_findings

    graph = _load(args.dataset, args.scale)
    print(format_findings(check_graph(graph)))


def _run_lint(args: argparse.Namespace) -> int:
    from .lint.cli import main as lint_main

    return lint_main(args.lint_args)


def _run_profile(args: argparse.Namespace) -> None:
    from .obs import render_metrics, render_span_tree, to_json
    from .obs.profile import run_profile

    report = run_profile(
        args.dataset, args.workload, scale=args.scale, workers=args.workers
    )
    if args.json:
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(to_json(report.to_dict()) + "\n", encoding="utf-8")
        print(f"wrote {out}")
        return
    print(
        f"profile {args.workload} on {args.dataset} @ scale {args.scale} "
        f"({report.workers} worker{'s' if report.workers != 1 else ''})"
    )
    for name, value in report.summary.items():
        print(f"  {name}: {value}")
    print()
    print(render_span_tree(report.trace))
    print()
    print(render_metrics(report.metrics))


def _run_query(args: argparse.Namespace) -> None:
    from .query import run_query

    graph = _load(args.dataset, args.scale)
    result = run_query(graph, args.text)
    if hasattr(result, "to_tables"):
        nodes, edges = result.to_tables()
        print("Aggregate nodes:")
        print(nodes.to_string(max_rows=args.rows))
        print("Aggregate edges:")
        print(edges.to_string(max_rows=args.rows))
    else:
        print(result)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraphTempo reproduction: regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    datasets = sub.add_parser("datasets", help="print Tables 3/4 size reports")
    datasets.add_argument("--scale", type=float, default=0.05)
    datasets.set_defaults(func=_run_datasets)

    figure = sub.add_parser("figure", help="regenerate a performance figure (5-11)")
    figure.add_argument("number", type=int)
    figure.add_argument("--dataset", choices=["dblp", "movielens"], default="dblp")
    figure.add_argument("--scale", type=float, default=0.05)
    figure.add_argument("--repeats", type=int, default=1)
    figure.add_argument("--split", action="store_true",
                        help="report operator and aggregation times separately")
    figure.set_defaults(func=_run_figure)

    evolution = sub.add_parser("evolution", help="Figure 12 evolution report")
    evolution.add_argument("--scale", type=float, default=0.05)
    evolution.add_argument("--min-publications", type=int, default=4)
    evolution.set_defaults(func=_run_evolution)

    explore_cmd = sub.add_parser("explore", help="Figures 13/14 exploration reports")
    explore_cmd.add_argument("--dataset", choices=["dblp", "movielens"], default="dblp")
    explore_cmd.add_argument("--scale", type=float, default=0.05)
    explore_cmd.set_defaults(func=_run_explore)

    groups = sub.add_parser(
        "groups", help="sweep all attribute groups for interesting intervals"
    )
    groups.add_argument("--dataset", choices=["dblp", "movielens"], default="dblp")
    groups.add_argument("--scale", type=float, default=0.05)
    groups.add_argument("--event", choices=[e.value for e in EventType],
                        default="growth")
    groups.add_argument("--goal", choices=[g.value for g in Goal],
                        default="minimal")
    groups.add_argument("--extend", choices=[e.value for e in ExtendSide],
                        default="new")
    groups.add_argument("-k", type=int, default=10)
    groups.set_defaults(func=_run_groups)

    zoom = sub.add_parser("zoom", help="coarsen the timeline (union/intersection)")
    zoom.add_argument("--dataset", choices=["dblp", "movielens"], default="dblp")
    zoom.add_argument("--scale", type=float, default=0.05)
    zoom.add_argument("--width", type=int, default=5)
    zoom.set_defaults(func=_run_zoom)

    olap = sub.add_parser("olap", help="greedy view selection + cube demo")
    olap.add_argument("--dataset", choices=["dblp", "movielens"], default="movielens")
    olap.add_argument("--scale", type=float, default=0.05)
    olap.add_argument("--budget", type=int, default=4)
    olap.set_defaults(func=_run_olap)

    metrics = sub.add_parser("metrics", help="homophily/turnover/stability report")
    metrics.add_argument("--dataset", choices=["dblp", "movielens"], default="dblp")
    metrics.add_argument("--scale", type=float, default=0.05)
    metrics.set_defaults(func=_run_metrics)

    dot = sub.add_parser("dot", help="export aggregate/evolution graphs as DOT")
    dot.add_argument("--dataset", choices=["dblp", "movielens"], default="dblp")
    dot.add_argument("--scale", type=float, default=0.05)
    dot.add_argument("--out", default="dot_out")
    dot.set_defaults(func=_run_dot)

    profile = sub.add_parser(
        "profile", help="run a workload under tracing and report span tree + metrics"
    )
    profile.add_argument("dataset", choices=["dblp", "movielens", "example"])
    profile.add_argument(
        "workload", choices=["aggregate", "explore", "session", "serve"]
    )
    profile.add_argument("--scale", type=float, default=0.05)
    profile.add_argument(
        "--workers", default=None, metavar="N",
        help="worker processes for the parallel layer "
             "(an integer or 'auto'; default: serial)",
    )
    profile.add_argument("--json", default=None, metavar="PATH",
                         help="write the report as JSON instead of text")
    profile.set_defaults(func=_run_profile)

    query = sub.add_parser("query", help="run a query-language statement")
    query.add_argument("text")
    query.add_argument("--dataset", choices=["dblp", "movielens"], default="dblp")
    query.add_argument("--scale", type=float, default=0.05)
    query.add_argument("--rows", type=int, default=12)
    query.set_defaults(func=_run_query)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential/metamorphic fuzzing of the temporal algebra",
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--cases", type=int, default=100)
    fuzz.add_argument("--laws", nargs="*", default=None, metavar="LAW",
                      help="law names to run (default: all registered laws)")
    fuzz.add_argument("--out", default=None, metavar="DIR",
                      help="directory for shrunk-counterexample reproducers")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="report raw counterexamples without shrinking")
    fuzz.add_argument("--list-laws", action="store_true",
                      help="list registered laws and exit")
    fuzz.set_defaults(func=_run_fuzz)

    stream = sub.add_parser(
        "stream",
        help="replay a dataset's history through the streaming store",
    )
    stream.add_argument("--dataset", choices=["dblp", "movielens"], default="dblp")
    stream.add_argument("--scale", type=float, default=0.05)
    stream.set_defaults(func=_run_stream)

    serve = sub.add_parser(
        "serve",
        help="drive the concurrent query server with a mixed workload",
    )
    serve.add_argument("--dataset", choices=["dblp", "movielens"], default="dblp")
    serve.add_argument("--scale", type=float, default=0.05)
    serve.add_argument("--requests", type=int, default=400)
    serve.add_argument("--threads", type=int, default=4)
    serve.add_argument("--cache", type=int, default=512,
                       help="result-cache capacity (entries)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the result cache")
    serve.set_defaults(func=_run_serve)

    check = sub.add_parser("check", help="run graph consistency diagnostics")
    check.add_argument("--dataset", choices=["dblp", "movielens"], default="dblp")
    check.add_argument("--scale", type=float, default=0.05)
    check.set_defaults(func=_run_check)

    lint = sub.add_parser(
        "lint",
        help="run the GraphTempo invariant linter (GT001-GT012)",
        add_help=False,
    )
    lint.add_argument("lint_args", nargs=argparse.REMAINDER,
                      help="arguments forwarded to python -m repro.lint")
    lint.set_defaults(func=_run_lint)

    timeseries = sub.add_parser(
        "timeseries", help="event time series with shift/anomaly detection"
    )
    timeseries.add_argument("--dataset", choices=["dblp", "movielens"],
                            default="movielens")
    timeseries.add_argument("--scale", type=float, default=0.05)
    timeseries.add_argument("--threshold", type=float, default=1.5)
    timeseries.set_defaults(func=_run_timeseries)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    arglist = list(sys.argv[1:] if argv is None else argv)
    if arglist and arglist[0] == "lint":
        # Forwarded verbatim: argparse.REMAINDER mis-parses leading
        # option flags (--select, --format) against the outer parser.
        from .lint.cli import main as lint_main

        return lint_main(arglist[1:])
    parser = build_parser()
    args = parser.parse_args(arglist)
    code = args.func(args)
    return code if isinstance(code, int) else 0
