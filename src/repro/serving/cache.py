"""A bounded, thread-safe, version-keyed LRU result cache.

Keys are ``(graph version id, normalized query key)``; values are the
immutable result objects the evaluators produce (aggregates, evolution
aggregates, temporal graphs, exploration results).  Because the version
id is part of the key, an append can never make an entry *wrong* — it
makes it *useless*, which is why invalidation here is an eviction policy
(:meth:`ResultCache.invalidate_before`) driven by
``StreamingStore.on_append`` rather than a correctness patch.

Every operation updates the ``serving.cache.*`` counters in
:mod:`repro.obs` (hits, misses, evictions, invalidations) plus a size
gauge, so a running server's cache behaviour is visible in any metrics
snapshot.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Hashable
from typing import Any

from ..errors import ConfigurationError
from ..obs.metrics import get_metrics

__all__ = ["ResultCache"]

CacheKey = tuple[int, tuple[Hashable, ...]]


class ResultCache:
    """LRU map from ``(version, normalized key)`` to result objects.

    ``capacity`` bounds the number of entries; 0 disables caching
    entirely (every ``get`` misses, every ``put`` is dropped), which is
    how the serving benchmark measures the uncached baseline through the
    same code path.
    """

    def __init__(self, capacity: int = 512, namespace: str = "serving.cache") -> None:
        if capacity < 0:
            raise ConfigurationError(
                f"cache capacity must be >= 0, got {capacity}"
            )
        self.capacity = capacity
        self._namespace = namespace
        self._lock = threading.Lock()
        self._entries: OrderedDict[CacheKey, Any] = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _gauge_size(self) -> None:
        # Called under the lock.
        get_metrics().gauge(f"{self._namespace}.size", float(len(self._entries)))

    def get(self, key: CacheKey) -> Any | None:
        """The cached result for ``key`` (refreshing its recency), or
        ``None``.  Results are immutable values — callers share them."""
        metrics = get_metrics()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                metrics.inc(f"{self._namespace}.misses")
                return None
            self._entries.move_to_end(key)
            metrics.inc(f"{self._namespace}.hits")
            return entry

    def put(self, key: CacheKey, value: Any) -> Any:
        """Insert ``value`` under ``key``, evicting the least recently
        used entries beyond capacity.  Returns the entry that ends up
        cached (an earlier racer's identical result wins, so concurrent
        fillers of one key converge on a single shared object)."""
        if self.capacity == 0:
            return value
        metrics = get_metrics()
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                metrics.inc(f"{self._namespace}.evictions")
            self._gauge_size()
            return value

    def invalidate_before(self, version: int) -> int:
        """Drop every entry for a version older than ``version``; the
        append-hook eviction policy.  Returns how many were dropped."""
        with self._lock:
            stale = [key for key in self._entries if key[0] < version]
            for key in stale:
                del self._entries[key]
            if stale:
                get_metrics().inc(
                    f"{self._namespace}.invalidations", len(stale)
                )
                self._gauge_size()
            return len(stale)

    def clear(self) -> int:
        """Drop everything (counted as invalidations)."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            if dropped:
                get_metrics().inc(f"{self._namespace}.invalidations", dropped)
                self._gauge_size()
            return dropped

    def keys(self) -> tuple[CacheKey, ...]:
        """A snapshot of the current keys, LRU-first (tests/debugging)."""
        with self._lock:
            return tuple(self._entries)
