"""The cost-based query planner.

Given a :class:`~repro.serving.normalize.NormalizedQuery` and the cube
bound to the same graph, :func:`plan_query` picks the cheapest legal
execution route.  Aggregate queries whose source reduces to a
union-semantics window are routed through
:meth:`repro.olap.TemporalGraphCube.plan_routes` — the Section 4.3
machinery: exact cached cuboid, D-distributive attribute roll-up,
T-distributive per-time-point sum, or base evaluation, ranked by the
cube's cost model.  Everything else (projection/intersection/difference
sources, evolution, exploration, bare operators) evaluates from the base
graph; the serving result cache in front of the planner is what makes
*those* cheap on repetition.

Execution (:func:`execute_plan`) computes in canonical attribute order;
:func:`permute_result` maps the canonical result back to the caller's
written order, which is a bijection on weight keys and therefore
bit-exact for DIST and ALL alike.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any, cast

from ..core import (
    EvolutionAggregate,
    TemporalGraph,
    aggregate,
    aggregate_evolution,
    difference,
    intersection,
    project,
    union,
)
from ..exploration import EntityKind, EventType, ExtendSide, Goal, explore
from ..olap.cube import CubeRoute, TemporalGraphCube
from ..errors import InvalidTypeError
from .normalize import NormalizedQuery

__all__ = ["Plan", "plan_query", "execute_plan", "permute_result"]

#: Route names (the cube's four, reused verbatim for aggregates).
ROUTE_BASE = "base"


@dataclass(frozen=True)
class Plan:
    """One planned execution: the route, its cost, and how to run it."""

    query: NormalizedQuery
    route: str
    cost: float
    cube_route: CubeRoute | None = None

    def describe(self) -> str:
        """A one-line human-readable summary (``explain`` output)."""
        detail = (
            self.cube_route.describe()
            if self.cube_route is not None
            else self.query.describe()
        )
        return f"{self.route} (cost {self.cost:g}): {detail}"


def _base_cost(graph: TemporalGraph, query: NormalizedQuery) -> float:
    """Entity-rows touched by a from-scratch evaluation (abstract units)."""
    rows = graph.n_nodes + graph.n_edges
    points = sum(len(w) for w in query.windows) or len(graph.timeline.labels)
    return float(rows * max(points, 1))


def _cube_eligible(query: NormalizedQuery, cube: TemporalGraphCube) -> bool:
    """Aggregates the cube can serve: a union-semantics window over the
    cube's dimensions.  (Projection over several points selects entities
    present *throughout*, which is not a cuboid; single-point projections
    were already rewritten to unions by the normalizer.)"""
    return (
        query.kind == "aggregate"
        and query.operator == "union"
        and len(query.windows) == 1
        and bool(query.attributes)
        and set(query.attributes) <= set(cube.dimensions)
    )


def plan_query(
    graph: TemporalGraph, cube: TemporalGraphCube, query: NormalizedQuery
) -> Plan:
    """The cheapest legal plan for one normalized query."""
    if _cube_eligible(query, cube):
        routes = cube.plan_routes(
            query.attributes, times=query.windows[0], distinct=query.distinct
        )
        best = routes[0]
        return Plan(query, best.kind, best.cost, cube_route=best)
    return Plan(query, ROUTE_BASE, _base_cost(graph, query))


def _evaluate_operator(graph: TemporalGraph, query: NormalizedQuery) -> TemporalGraph:
    windows = query.windows
    if query.operator == "union":
        return union(graph, windows[0])
    if query.operator == "project":
        return project(graph, windows[0])
    if query.operator == "intersection":
        return intersection(graph, windows[0], windows[1])
    if query.operator == "difference":
        return difference(graph, windows[0], windows[1])
    raise InvalidTypeError(f"unknown operator {query.operator!r}")


def execute_plan(
    graph: TemporalGraph, cube: TemporalGraphCube, plan: Plan
) -> Any:
    """Run one plan, returning the result in canonical attribute order.

    Aggregates with a cube route execute through the cube (which caches
    the cuboid and records the route in its stats); everything else is
    the naive evaluator's code path over the normalized form.
    """
    query = plan.query
    if query.kind == "operator":
        return _evaluate_operator(graph, query)
    if query.kind == "aggregate":
        if plan.cube_route is not None:
            return cube.execute_route(plan.cube_route)
        source = _evaluate_operator(graph, query)
        return aggregate(
            source, list(query.attributes), distinct=query.distinct
        )
    if query.kind == "evolution":
        return aggregate_evolution(
            graph, query.windows[0], query.windows[1], list(query.attributes)
        )
    if query.kind == "explore":
        event, goal, extend, k, entity, attributes, key = query.detail
        return explore(
            graph,
            EventType(cast(str, event)),
            Goal(cast(str, goal)),
            ExtendSide(cast(str, extend)),
            cast(int, k),
            entity=EntityKind(cast(str, entity)),
            attributes=list(cast("tuple[str, ...]", attributes)),
            key=key,
        )
    raise InvalidTypeError(f"unknown query kind {query.kind!r}")


def _permute_evolution(
    result: EvolutionAggregate, output: Sequence[str]
) -> EvolutionAggregate:
    positions = [result.attributes.index(name) for name in output]
    return EvolutionAggregate(
        attributes=tuple(output),
        old_times=result.old_times,
        new_times=result.new_times,
        node_weights={
            tuple(key[p] for p in positions): weights
            for key, weights in result.node_weights.items()
        },
        edge_weights={
            (
                tuple(source[p] for p in positions),
                tuple(target[p] for p in positions),
            ): weights
            for (source, target), weights in result.edge_weights.items()
        },
    )


def permute_result(result: Any, query: NormalizedQuery) -> Any:
    """Map a canonical-order result back to the caller's written order.

    A no-op unless the query's written attribute order differs from the
    canonical one.  Reordering the same attribute set is a bijection on
    weight keys, so the permuted result is bit-identical to evaluating in
    the written order directly — the property the
    ``serving-cache-transparency`` law fuzzes.
    """
    if not query.needs_permutation:
        return result
    if query.kind == "aggregate":
        return result.rollup(tuple(query.output))
    if query.kind == "evolution":
        return _permute_evolution(result, query.output)
    return result
