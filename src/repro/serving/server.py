"""The concurrent query server.

:class:`QueryServer` turns a graph — or a live
:class:`~repro.streaming.StreamingStore` — into a thread-safe query
endpoint.  Every request reads one immutable state snapshot (a pinned
:class:`~repro.streaming.GraphVersion` plus the cube bound to it), so a
request that started on version *n* finishes on version *n* even while
appends publish newer versions concurrently.  Results flow through a
bounded version-keyed LRU (:class:`~repro.serving.cache.ResultCache`):
an entry's key includes the version id, so appends can never make a
cached result wrong — the append hook merely evicts entries for
superseded versions.

The serving pipeline per request::

    text --parse LRU--> AST --normalize--> NormalizedQuery
         --result cache?--> hit: permute + return
         --plan (cube routes / base)--> execute --cache--> permute

Everything is observable: ``serving.queries``, ``serving.route.*``,
``serving.rebinds`` counters and the ``serving.query`` trace span, plus
the ``serving.cache.*`` family from the result cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from ..core import TemporalGraph
from ..core.granularity import TimeHierarchy
from ..obs.metrics import get_metrics
from ..obs.trace import trace_span
from ..olap.cube import TemporalGraphCube
from ..parallel import Executor, executor_scope
from ..query.ast import QueryExpr
from ..query.parser import parse
from ..streaming import GraphVersion, StreamingStore
from ..errors import ConfigurationError
from .cache import ResultCache
from .normalize import NormalizedQuery, normalize_query
from .planner import Plan, execute_plan, permute_result, plan_query

__all__ = ["QueryServer", "Served"]

#: Route name reported for a result-cache hit (the cube's four route
#: names cover the miss paths).
ROUTE_CACHE = "cache"


@dataclass(frozen=True)
class Served:
    """One served query: the result plus where it came from.

    ``version`` is the graph version that produced ``result`` — the
    version to check against when auditing cache transparency.  ``route``
    is ``cache`` for a result-cache hit, otherwise the planner's route
    (``exact`` / ``rollup`` / ``time_sum`` / ``base``).
    """

    result: Any
    version: int
    route: str
    cached: bool


@dataclass(frozen=True)
class _State:
    """One immutable serving state: a pinned version and its cube."""

    version: int
    graph: TemporalGraph
    cube: TemporalGraphCube


class QueryServer:
    """Thread-safe query serving over pinned immutable graph versions.

    Parameters
    ----------
    source:
        A :class:`~repro.streaming.StreamingStore` (the server subscribes
        and follows appends), a :class:`~repro.streaming.GraphVersion`,
        or a bare :class:`~repro.core.TemporalGraph` (served as version
        0; advance explicitly with :meth:`rebind`).
    cube:
        Adopt an existing cube for the initial state (it must already be
        bound to the source's current graph) — the seam
        :class:`~repro.session.GraphTempoSession` uses to share its warm
        cube with the server.  Later rebinds build fresh cubes.
    hierarchy:
        Time hierarchy for cubes the server builds itself.
    cache_capacity:
        Result-cache entries to keep (0 disables result caching).
    parse_capacity:
        Parsed-AST LRU entries to keep (0 disables parse caching).
    executor:
        Pin every request's fan-outs to one executor instance —
        typically a shared persistent
        :class:`~repro.parallel.ShardedExecutor`, so many concurrent
        request threads multiplex onto one warm pool instead of each
        forking its own.  ``None`` (default) leaves fan-out resolution
        to the ambient rules (:func:`repro.parallel.get_executor`).
        The server follows appends but does not own the executor: close
        the fabric separately (or via
        :func:`repro.parallel.close_shared_fabrics`).

    Requests never block appends and appends never block requests: the
    state swap is one attribute assignment under a small lock, and every
    request works off the state snapshot it read first.
    """

    def __init__(
        self,
        source: StreamingStore | GraphVersion | TemporalGraph,
        cube: TemporalGraphCube | None = None,
        hierarchy: TimeHierarchy | None = None,
        cache_capacity: int = 512,
        parse_capacity: int = 256,
        executor: Executor | None = None,
    ) -> None:
        if parse_capacity < 0:
            raise ConfigurationError(
                f"parse capacity must be >= 0, got {parse_capacity}"
            )
        self.hierarchy = hierarchy
        self.executor = executor
        self.cache = ResultCache(cache_capacity)
        self._lock = threading.Lock()
        self._parse_capacity = parse_capacity
        self._parsed: OrderedDict[str, QueryExpr] = OrderedDict()
        self._unsubscribe: Callable[[], None] | None = None
        self._state: _State
        if isinstance(source, StreamingStore):
            current, self._unsubscribe = source.subscribe(self._on_append)
            self._state = self._make_state(current, cube)
        elif isinstance(source, GraphVersion):
            self._state = self._make_state(source, cube)
        else:
            self._state = self._make_state(GraphVersion(0, source), cube)

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------

    def _make_state(
        self, version: GraphVersion, cube: TemporalGraphCube | None
    ) -> _State:
        if cube is not None and cube.graph is not version.graph:
            raise ConfigurationError(
                "adopted cube is bound to a different graph than the "
                "serving version"
            )
        if cube is None:
            cube = TemporalGraphCube(version.graph, hierarchy=self.hierarchy)
        return _State(version.version, version.graph, cube)

    def _on_append(self, version: GraphVersion) -> None:
        self.rebind(version)

    def rebind(
        self,
        source: GraphVersion | TemporalGraph,
        cube: TemporalGraphCube | None = None,
    ) -> int:
        """Adopt a new graph version; in-flight requests finish on the
        version they started with.  Entries cached for superseded
        versions are evicted; the new version id is returned.

        A bare graph is assigned the next version id — the path a
        non-streaming caller uses to advance the server by hand.
        """
        with self._lock:
            if isinstance(source, GraphVersion):
                version = source
            else:
                version = GraphVersion(self._state.version + 1, source)
            self._state = self._make_state(version, cube)
        self.cache.invalidate_before(version.version)
        get_metrics().inc("serving.rebinds")
        return version.version

    def close(self) -> None:
        """Stop following the streaming store (idempotent)."""
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def version(self) -> int:
        """The version id new requests will be served from."""
        return self._state.version

    @property
    def graph(self) -> TemporalGraph:
        """The graph new requests will be served from."""
        return self._state.graph

    @property
    def cube(self) -> TemporalGraphCube:
        """The cube bound to the current serving state."""
        return self._state.cube

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def _parse(self, text: str) -> QueryExpr:
        if self._parse_capacity == 0:
            return parse(text)
        with self._lock:
            expr = self._parsed.get(text)
            if expr is not None:
                self._parsed.move_to_end(text)
                return expr
        expr = parse(text)
        with self._lock:
            expr = self._parsed.setdefault(text, expr)
            while len(self._parsed) > self._parse_capacity:
                self._parsed.popitem(last=False)
        return expr

    def serve_expr(self, expr: QueryExpr) -> Served:
        """Serve one parsed query expression (see :meth:`serve`)."""
        if self.executor is not None:
            with executor_scope(self.executor):
                return self._serve_expr(expr)
        return self._serve_expr(expr)

    def _serve_expr(self, expr: QueryExpr) -> Served:
        state = self._state  # one snapshot; the request stays on it
        metrics = get_metrics()
        with trace_span("serving.query", version=state.version):
            normalized = normalize_query(state.graph, expr)
            key = (state.version, normalized.cache_key)
            hit = self.cache.get(key)
            if hit is not None:
                metrics.inc("serving.queries")
                metrics.inc(f"serving.route.{ROUTE_CACHE}")
                return Served(
                    permute_result(hit, normalized),
                    state.version,
                    ROUTE_CACHE,
                    True,
                )
            plan = plan_query(state.graph, state.cube, normalized)
            result = execute_plan(state.graph, state.cube, plan)
            result = self.cache.put(key, result)
            metrics.inc("serving.queries")
            metrics.inc(f"serving.route.{plan.route}")
            return Served(
                permute_result(result, normalized),
                state.version,
                plan.route,
                False,
            )

    def serve(self, text: str) -> Served:
        """Serve one query string: parse (cached), normalize, check the
        result cache, otherwise plan and execute the cheapest route."""
        return self.serve_expr(self._parse(text))

    def query(self, text: str) -> Any:
        """The result alone — a drop-in for
        :func:`repro.query.run_query` over the current version."""
        return self.serve(text).result

    def explain(self, text: str) -> str:
        """The plan for a query, without executing it.

        Reports the route a *miss* would take; whether the result cache
        holds the key is reported separately so explaining never
        perturbs hit/miss counters.
        """
        state = self._state
        normalized = normalize_query(state.graph, self._parse(text))
        plan: Plan = plan_query(state.graph, state.cube, normalized)
        key = (state.version, normalized.cache_key)
        status = "hit" if key in self.cache.keys() else "miss"
        return (
            f"version {state.version}; result cache {status}; "
            f"{plan.describe()}"
        )

    def _normalize(self, text: str) -> NormalizedQuery:
        """Normalization against the current state (tests/debugging)."""
        return normalize_query(self._state.graph, self._parse(text))
