"""The query serving layer: normalizer, cost-based planner,
version-keyed result cache and a concurrent query server.

The pipeline (``docs/serving.md``)::

    text --> AST --> NormalizedQuery --> ResultCache? --> Plan --> result

Serving is *transparent*: a served result is bit-identical to evaluating
the same query text from scratch against the version that served it —
the ``serving-cache-transparency`` differential law fuzzes exactly this.
"""

from .cache import ResultCache
from .normalize import NormalizedQuery, normalize_query
from .planner import Plan, execute_plan, permute_result, plan_query
from .server import QueryServer, Served
from .workload import WorkloadReport, mixed_queries, percentile, run_workload

__all__ = [
    "QueryServer",
    "Served",
    "ResultCache",
    "NormalizedQuery",
    "normalize_query",
    "Plan",
    "plan_query",
    "execute_plan",
    "permute_result",
    "WorkloadReport",
    "run_workload",
    "percentile",
    "mixed_queries",
]
