"""Query normalization: parsed ASTs to canonical, bindable cache keys.

Two queries that must return bit-identical results should share one
cache entry.  The normalizer binds a parsed
:data:`~repro.query.ast.QueryExpr` against a concrete graph and rewrites
it into a :class:`NormalizedQuery` whose ``cache_key`` is invariant
under every rewrite the algebra licenses:

* **window canonicalization** — every window is bound to concrete
  timeline labels, deduplicated and sorted to timeline order (windows
  have set semantics: every operator routes them through
  :func:`~repro.core.ordered_times`);
* **commutative window reordering** — ``union``'s windows merge into one
  set, ``intersection``'s two windows sort (Definitions 2.3/2.4 are
  symmetric); ``difference`` keeps its order (Definition 2.5 is not);
* **operator rewrites** — ``project`` merges its windows (its selection
  is over the union of the written windows) and a single-point
  ``project`` *is* the single-point ``union`` (present throughout one
  instant == present at it);
* **attribute-set canonicalization** — aggregate and evolution attribute
  lists are rewritten to dimension order via
  :func:`repro.olap.lattice.canonical`, remembering the written order as
  ``output`` so the served result can be permuted back bit-exactly
  (projection onto a reordering of the same attribute set is a
  bijection on weight keys for DIST and ALL alike).

Window binding raises the same
:class:`~repro.query.evaluator.QueryBindingError` the naive evaluator
raises for an unknown time label; an unknown *attribute* is kept as
written and fails at evaluation with the naive path's error — either
way, caching stays observably transparent.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass

from ..core import TemporalGraph
from ..olap.lattice import canonical
from ..query.ast import (
    AggregateExpr,
    EvolutionExpr,
    ExploreExpr,
    OperatorExpr,
    QueryExpr,
)
from ..query.evaluator import bind_window
from ..errors import InvalidTypeError

__all__ = ["NormalizedQuery", "normalize_query"]

Window = tuple[Hashable, ...]


@dataclass(frozen=True)
class NormalizedQuery:
    """One bound, canonicalized query.

    ``kind`` is ``operator`` / ``aggregate`` / ``evolution`` /
    ``explore``; the remaining fields are the canonical payload.  For
    aggregates and evolutions, ``attributes`` is the canonical
    (dimension-ordered, deduplicated) attribute set and ``output`` the
    order the caller wrote — execution computes on ``attributes`` and
    permutes to ``output``.
    """

    kind: str
    operator: str = ""
    windows: tuple[Window, ...] = ()
    attributes: tuple[str, ...] = ()
    output: tuple[str, ...] = ()
    distinct: bool = False
    detail: tuple[Hashable, ...] = ()

    @property
    def cache_key(self) -> tuple[Hashable, ...]:
        """The hashable identity shared by every equivalent query.

        Deliberately excludes ``output``: results are cached in
        canonical attribute order and permuted per caller, so
        ``aggregate a, b`` and ``aggregate b, a`` share one entry.
        """
        return (
            self.kind,
            self.operator,
            self.windows,
            self.attributes,
            self.distinct,
            self.detail,
        )

    @property
    def needs_permutation(self) -> bool:
        return self.output != self.attributes

    def describe(self) -> str:
        if self.kind == "operator":
            return f"{self.operator} over {len(self.windows)} window(s)"
        if self.kind == "aggregate":
            mode = "DIST" if self.distinct else "ALL"
            return (
                f"aggregate {mode} {'/'.join(self.attributes)} "
                f"over {self.operator}"
            )
        if self.kind == "evolution":
            return f"evolution by {'/'.join(self.attributes)}"
        return f"explore {self.detail[0] if self.detail else '?'}"


def _bound_window(graph: TemporalGraph, window: object) -> Window:
    """Bind one WindowExpr to sorted, deduplicated timeline labels."""
    labels = bind_window(graph, window)  # type: ignore[arg-type]
    timeline = graph.timeline
    wanted = set(labels)
    return tuple(t for t in timeline.labels if t in wanted)


def _window_rank(graph: TemporalGraph, window: Window) -> tuple[int, ...]:
    return tuple(graph.timeline.index_of(t) for t in window)


def _normalize_operator(
    graph: TemporalGraph, expr: OperatorExpr
) -> tuple[str, tuple[Window, ...]]:
    windows = tuple(_bound_window(graph, w) for w in expr.windows)
    name = expr.name
    if name in ("project", "union"):
        merged: set[Hashable] = set()
        for window in windows:
            merged.update(window)
        window = tuple(t for t in graph.timeline.labels if t in merged)
        if name == "project" and len(window) == 1:
            # Present throughout one instant == present at it.
            name = "union"
        return name, (window,)
    if name == "intersection":
        return name, tuple(
            sorted(windows, key=lambda w: _window_rank(graph, w))
        )
    return name, windows  # difference: order is semantics


def _canonical_attributes(
    graph: TemporalGraph, attributes: Sequence[str]
) -> tuple[str, ...]:
    """Dimension-ordered, deduplicated attributes — or as written when a
    name is unknown (evaluation then raises the naive path's error)."""
    dimensions = graph.attribute_names
    if not set(attributes) <= set(dimensions):
        return tuple(attributes)
    return canonical(attributes, dimensions)


def normalize_query(graph: TemporalGraph, expr: QueryExpr) -> NormalizedQuery:
    """Bind and canonicalize one parsed query against ``graph``."""
    if isinstance(expr, OperatorExpr):
        name, windows = _normalize_operator(graph, expr)
        return NormalizedQuery(kind="operator", operator=name, windows=windows)
    if isinstance(expr, AggregateExpr):
        name, windows = _normalize_operator(graph, expr.source)
        output = tuple(expr.attributes)
        return NormalizedQuery(
            kind="aggregate",
            operator=name,
            windows=windows,
            attributes=_canonical_attributes(graph, output),
            output=output,
            distinct=expr.distinct,
        )
    if isinstance(expr, EvolutionExpr):
        windows = (
            _bound_window(graph, expr.old),
            _bound_window(graph, expr.new),
        )
        output = tuple(expr.attributes)
        return NormalizedQuery(
            kind="evolution",
            windows=windows,
            attributes=_canonical_attributes(graph, output),
            output=output,
        )
    if isinstance(expr, ExploreExpr):
        return NormalizedQuery(
            kind="explore",
            detail=(
                expr.event,
                expr.goal,
                expr.extend,
                expr.k,
                expr.entity,
                tuple(expr.attributes),
                expr.key,
            ),
        )
    raise InvalidTypeError(f"unknown query expression: {expr!r}")
