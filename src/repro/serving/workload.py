"""Concurrent workload driving for servers and benchmarks.

:func:`run_workload` hammers an execute callable (usually
``QueryServer.serve`` or a naive ``run_query`` adapter) with a
round-robin query mix from N threads and reports sustained QPS plus the
latency distribution.  The same driver measures the cached and uncached
arms of ``benchmarks/bench_serving.py`` and powers ``repro serve``, so
the two numbers are always produced by identical machinery.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from ..core import TemporalGraph
from ..errors import ConfigurationError, ValidationError

__all__ = ["WorkloadReport", "run_workload", "percentile", "mixed_queries"]


def mixed_queries(
    graph: TemporalGraph, attributes: Sequence[str]
) -> tuple[str, ...]:
    """A representative mixed workload over ``graph``: aggregates (ALL
    and DIST, single and multi attribute, commuted duplicates that the
    normalizer should fold together), an evolution, and raw operators.

    Deterministic given the graph and attributes — the same mix drives
    ``repro serve``, ``repro profile ... serve`` and
    ``benchmarks/bench_serving.py``.
    """
    if not attributes:
        raise ValidationError("mixed_queries needs at least one attribute")
    labels = graph.timeline.labels
    first, mid, last = labels[0], labels[len(labels) // 2], labels[-1]
    head = attributes[0]
    queries = [
        f"aggregate {head} all over union [{first}..{last}]",
        f"aggregate {head} over union [{first}], [{mid}]",
        f"aggregate {head} over union [{mid}], [{first}]",
        f"aggregate {head} distinct over project [{first}..{mid}]",
        f"evolution [{first}..{mid}] -> [{last}] by {head}",
        f"union [{first}], [{last}]",
        f"intersection [{first}..{mid}], [{mid}..{last}]",
        f"difference [{last}], [{first}]",
    ]
    if len(attributes) >= 2:
        pair = ", ".join(attributes[:2])
        swapped = ", ".join(reversed(attributes[:2]))
        queries += [
            f"aggregate {pair} all over union [{first}..{last}]",
            f"aggregate {swapped} all over union [{first}..{last}]",
            f"aggregate {pair} distinct over union [{mid}]",
        ]
    return tuple(queries)


def percentile(latencies: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (nearest-rank) of a latency sample."""
    if not latencies:
        raise ValidationError("percentile of an empty sample")
    ranked = sorted(latencies)
    rank = max(0, min(len(ranked) - 1, round(q / 100.0 * len(ranked)) - 1))
    return ranked[rank]


@dataclass(frozen=True)
class WorkloadReport:
    """One workload run: throughput and latency distribution.

    Latencies are milliseconds; ``qps`` is requests divided by the
    wall-clock span from first request start to last request end.
    """

    requests: int
    threads: int
    duration_s: float
    qps: float
    mean_ms: float
    p50_ms: float
    p99_ms: float

    def describe(self) -> str:
        return (
            f"{self.requests} requests / {self.threads} thread(s) in "
            f"{self.duration_s:.3f}s = {self.qps:.0f} QPS "
            f"(mean {self.mean_ms:.3f}ms, p50 {self.p50_ms:.3f}ms, "
            f"p99 {self.p99_ms:.3f}ms)"
        )


def run_workload(
    execute: Callable[[str], Any],
    queries: Sequence[str],
    requests: int = 1000,
    threads: int = 4,
) -> WorkloadReport:
    """Drive ``execute`` with ``requests`` round-robin picks from
    ``queries`` across ``threads`` workers and report QPS / latency.

    The request stream is partitioned deterministically (worker *i*
    takes requests ``i, i+threads, ...``), so a run is reproducible up
    to scheduling.  A worker exception propagates to the caller after
    all workers finish.
    """
    if not queries:
        raise ValidationError("run_workload needs at least one query")
    if requests < 1 or threads < 1:
        raise ConfigurationError(
            f"requests and threads must be >= 1, got {requests}/{threads}"
        )
    threads = min(threads, requests)
    buckets: list[list[float]] = [[] for _ in range(threads)]
    failures: list[BaseException] = []
    lock = threading.Lock()

    def worker(index: int) -> None:
        mine = buckets[index]
        try:
            for n in range(index, requests, threads):
                text = queries[n % len(queries)]
                start = time.perf_counter()
                execute(text)
                mine.append((time.perf_counter() - start) * 1000.0)
        except BaseException as exc:  # re-raised on the caller's thread
            with lock:
                failures.append(exc)

    pool = [
        threading.Thread(target=worker, args=(i,), name=f"serve-worker-{i}")
        for i in range(threads)
    ]
    began = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    duration = time.perf_counter() - began
    if failures:
        raise failures[0]
    latencies = [latency for bucket in buckets for latency in bucket]
    return WorkloadReport(
        requests=len(latencies),
        threads=threads,
        duration_s=duration,
        qps=len(latencies) / duration if duration > 0 else float("inf"),
        mean_ms=sum(latencies) / len(latencies),
        p50_ms=percentile(latencies, 50),
        p99_ms=percentile(latencies, 99),
    )
