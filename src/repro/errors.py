"""The GraphTempo error taxonomy.

Every failure raised by the library derives from :class:`GraphTempoError`
so callers can catch reproduction failures uniformly, while each concrete
class also inherits the builtin exception the call site historically
raised (``ValueError``, ``KeyError``, ``TypeError``), keeping idiomatic
``except ValueError`` handlers and the existing test-suite contracts
working unchanged.

The taxonomy mirrors the paper's structure:

* :class:`TemporalError` — misuse of time sets and intervals, the inputs
  of the temporal operators of Definitions 2.2-2.5 (Algorithm 1);
* :class:`AggregationError` — invalid aggregation or measure
  specifications for Definition 2.6 / Algorithm 2;
* :class:`ExplorationError` — invalid exploration strategies or
  parameters (Section 3);
* :class:`UnknownLabelError` — a lookup named a time point, unit,
  attribute, node or edge the graph does not have;
* :class:`DatasetError` — loaders and generators for the paper's
  datasets (Table 3) received broken inputs;
* :class:`MaterializationError` / :class:`ConfigurationError` — the
  materialization store and user-facing configuration surfaces;
* :class:`StorageError` — the pluggable storage substrate
  (:mod:`repro.storage`) was misused: unknown backend name, corrupt
  persisted layout, or a write into a read-only mapping;
* :class:`ParallelError` (with :class:`WorkerCrashError` /
  :class:`WorkerTimeoutError`) — the :mod:`repro.parallel` execution
  layer could not complete a fan-out.  Domain failures raised *inside* a
  worker re-raise as their original taxonomy type; only infrastructure
  failures (crashed worker, timeout, unpicklable task) surface as
  ``ParallelError``.

The labeled-array substrate keeps its own hierarchy in
:mod:`repro.frames.errors`; its root :class:`~repro.frames.errors.FrameError`
subclasses :class:`GraphTempoError`, and this module re-exports the frame
error classes so ``repro.errors`` is the single import surface for every
exception the project raises.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "GraphTempoError",
    "ValidationError",
    "InvalidTypeError",
    "UnknownLabelError",
    "TimeIndexError",
    "TemporalError",
    "AggregationError",
    "ExplorationError",
    "DatasetError",
    "MaterializationError",
    "ConfigurationError",
    "StorageError",
    "ParallelError",
    "WorkerCrashError",
    "WorkerTimeoutError",
    # Labeled-array substrate errors, re-exported from repro.frames.errors.
    "FrameError",
    "LabelError",
    "DuplicateLabelError",
    "ShapeError",
    "SchemaError",
]


class GraphTempoError(Exception):
    """Root of every exception raised by the GraphTempo reproduction."""


class ValidationError(GraphTempoError, ValueError):
    """An argument had the right type but an unusable value."""


class InvalidTypeError(GraphTempoError, TypeError):
    """An argument had a type the operation cannot work with."""


class UnknownLabelError(GraphTempoError, KeyError):
    """A lookup referenced a time point, unit, attribute, node or edge
    that the graph (or view) does not define.

    Inherits from :class:`KeyError` so idiomatic ``except KeyError`` call
    sites keep working, while still being a :class:`GraphTempoError`.
    """

    def __str__(self) -> str:  # KeyError quotes its args; keep messages readable
        return Exception.__str__(self)


class TimeIndexError(GraphTempoError, IndexError):
    """A positional time index fell outside the timeline.

    Inherits from :class:`IndexError` so positional-indexing call sites
    keep their builtin contract.
    """


class TemporalError(ValidationError):
    """A time set or interval handed to a temporal operator
    (Definitions 2.2-2.5) was empty, unordered, or otherwise unusable."""


class AggregationError(ValidationError):
    """An aggregation or measure specification (Definition 2.6,
    Algorithm 2) was invalid."""


class ExplorationError(ValidationError):
    """An exploration strategy (Section 3) was given invalid parameters."""


class DatasetError(ValidationError):
    """A dataset loader or generator received broken inputs."""


class MaterializationError(ValidationError):
    """The materialization store was used inconsistently."""


class ConfigurationError(ValidationError):
    """A configuration surface (session, CLI, lint) was misconfigured."""


class StorageError(ValidationError):
    """A :mod:`repro.storage` backend was selected, constructed or
    persisted inconsistently (unknown backend name, corrupt on-disk
    layout, write into a read-only mapping)."""


class ParallelError(GraphTempoError, RuntimeError):
    """The parallel execution layer failed to complete a fan-out.

    Carries the failing task spec (when one is known) as :attr:`task`,
    so a crash or timeout names the unit of work that triggered it.
    Inherits :class:`RuntimeError`: the inputs were fine, the
    infrastructure was not.
    """

    def __init__(self, message: str, *, task: object = None) -> None:
        super().__init__(message)
        #: The task spec that was running (or pending) when the fan-out
        #: failed, ``None`` when no single task can be blamed.
        self.task = task


class WorkerCrashError(ParallelError):
    """A worker process died without reporting a result."""


class WorkerTimeoutError(ParallelError):
    """A parallel fan-out exceeded its deadline."""


# ---------------------------------------------------------------------------
# Re-export of the labeled-array substrate errors.
#
# ``repro.frames.errors`` imports :class:`GraphTempoError` from this module,
# so a top-level ``from .frames.errors import ...`` here would be circular
# whenever ``repro.frames`` is imported first.  A module ``__getattr__``
# (PEP 562) defers the import until the name is actually requested, which
# is always after both modules finished initialising.
# ---------------------------------------------------------------------------

_FRAME_ERROR_NAMES = frozenset(
    {"FrameError", "LabelError", "DuplicateLabelError", "ShapeError", "SchemaError"}
)

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from .frames.errors import (  # noqa: F401
        DuplicateLabelError,
        FrameError,
        LabelError,
        SchemaError,
        ShapeError,
    )


def __getattr__(name: str) -> type[Exception]:
    if name in _FRAME_ERROR_NAMES:
        from .frames import errors as _frame_errors

        return getattr(_frame_errors, name)  # type: ignore[no-any-return]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
