"""Reporting: JSON export and terminal rendering of observability data.

Benchmarks and the ``repro profile`` CLI subcommand attach span trees and
metric snapshots as artifacts; these helpers define the one JSON shape
they all share (``{"trace": <span tree>, "metrics": <snapshot>}``) and a
compact indented text rendering for terminals.
"""

from __future__ import annotations

import json
from typing import Any

from .metrics import MetricsRegistry
from .trace import Span

__all__ = [
    "trace_to_dict",
    "observability_snapshot",
    "to_json",
    "render_span_tree",
    "render_metrics",
]


def trace_to_dict(span: Span | None) -> dict[str, Any] | None:
    """The span tree as JSON-serializable nested dicts (None passes through)."""
    return None if span is None else span.to_dict()


def observability_snapshot(
    span: Span | None, registry: MetricsRegistry
) -> dict[str, Any]:
    """The shared artifact shape: one trace plus one metric snapshot."""
    return {"trace": trace_to_dict(span), "metrics": registry.snapshot()}


def to_json(payload: dict[str, Any], indent: int = 2) -> str:
    """Serialize an artifact payload, tolerating non-JSON scalar leaves."""
    return json.dumps(payload, indent=indent, default=str, sort_keys=False)


def _render_span(span: Span, depth: int, lines: list[str], total: float) -> None:
    share = f" ({span.wall_s / total:5.1%})" if total > 0 else ""
    attrs = (
        " " + " ".join(f"{k}={v!r}" for k, v in span.attributes.items())
        if span.attributes
        else ""
    )
    lines.append(
        f"{'  ' * depth}{span.name}: {span.wall_s * 1000:.3f} ms wall, "
        f"{span.cpu_s * 1000:.3f} ms cpu{share}{attrs}"
    )
    for child in span.children:
        _render_span(child, depth + 1, lines, total)


def render_span_tree(span: Span | None) -> str:
    """An indented per-span timing tree with percent-of-root shares."""
    if span is None:
        return "no trace recorded (tracing disabled?)"
    lines: list[str] = []
    _render_span(span, 0, lines, span.wall_s)
    return "\n".join(lines)


def render_metrics(snapshot: dict[str, Any]) -> str:
    """Counters, gauges and timing summaries as aligned text."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append(f"  {name.ljust(width)}  {value}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name, value in gauges.items():
            lines.append(f"  {name.ljust(width)}  {value:g}")
    timings = snapshot.get("timings", {})
    if timings:
        lines.append("timings:")
        width = max(len(name) for name in timings)
        for name, summary in timings.items():
            lines.append(
                f"  {name.ljust(width)}  n={summary['count']} "
                f"total={summary['total_s'] * 1000:.3f}ms "
                f"mean={summary['mean_s'] * 1000:.3f}ms "
                f"max={summary['max_s'] * 1000:.3f}ms"
            )
    return "\n".join(lines) if lines else "no metrics recorded"
