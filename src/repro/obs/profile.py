"""Profile workloads: run a named pipeline under tracing and collect
the span tree + metric snapshot as one report.

This is the engine behind ``repro profile <dataset> <workload>``.  Each
workload is a small, representative pipeline (operator → aggregate →
explore) run with a fresh enabled tracer and a fresh metrics registry
installed process-wide, so the report isolates exactly what the workload
did.  The previous tracer/registry are restored afterwards.

Unlike the rest of :mod:`repro.obs`, this module imports the upper
layers (datasets, session); import it directly
(``from repro.obs.profile import run_profile``) rather than through the
package root, which must stay importable from the substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ConfigurationError
from ..parallel import parallelism_scope
from .export import observability_snapshot
from .metrics import MetricsRegistry, set_metrics
from .trace import Span, Tracer, set_tracer

__all__ = ["ProfileReport", "run_profile", "WORKLOADS", "DATASETS"]

#: Workload names accepted by :func:`run_profile` / ``repro profile``.
WORKLOADS = ("aggregate", "explore", "session", "serve")
#: Dataset names accepted by :func:`run_profile` / ``repro profile``.
DATASETS = ("dblp", "movielens", "example")


@dataclass(frozen=True)
class ProfileReport:
    """One profiled workload run: its trace, metrics, and summary."""

    dataset: str
    workload: str
    scale: float
    trace: Span | None
    metrics: dict[str, Any]
    summary: dict[str, Any]
    workers: int | None = None

    def to_dict(self) -> dict[str, Any]:
        """The JSON artifact shape benchmarks and CI attach."""
        payload: dict[str, Any] = {
            "dataset": self.dataset,
            "workload": self.workload,
            "scale": self.scale,
            "workers": self.workers,
            "summary": dict(self.summary),
        }
        payload.update(
            {
                "trace": None if self.trace is None else self.trace.to_dict(),
                "metrics": dict(self.metrics),
            }
        )
        return payload


def _load_graph(dataset: str, scale: float) -> Any:
    from ..datasets import generate_dblp, generate_movielens, paper_example

    if dataset == "dblp":
        return generate_dblp(scale=scale)
    if dataset == "movielens":
        return generate_movielens(scale=scale)
    if dataset == "example":
        return paper_example()
    raise ConfigurationError(
        f"unknown profile dataset {dataset!r}; choose one of {DATASETS!r}"
    )


def _run_workload(workload: str, graph: Any, tracer: Tracer) -> dict[str, Any]:
    from ..core import aggregate, aggregate_fast, union
    from ..session import GraphTempoSession

    labels = graph.timeline.labels
    session = GraphTempoSession(graph)
    summary: dict[str, Any] = {
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "n_times": len(labels),
    }
    attributes = ["gender"] if "gender" in graph.attribute_names else [
        graph.attribute_names[0]
    ]
    with tracer.span(f"profile.{workload}"):
        if workload in ("aggregate", "session"):
            window = union(graph, labels)
            dist = aggregate(window, attributes, distinct=True)
            all_agg = aggregate(window, attributes, distinct=False)
            fast = aggregate_fast(window, attributes, distinct=False)
            summary["aggregate_nodes_dist"] = dist.n_aggregate_nodes
            summary["aggregate_nodes_all"] = all_agg.n_aggregate_nodes
            summary["aggregate_engines_agree"] = (
                dict(all_agg.node_weights) == dict(fast.node_weights)
            )
        if workload in ("explore", "session"):
            result = session.explore("growth", "minimal", "new")
            summary["explore_pairs"] = len(result.pairs)
            summary["explore_evaluations"] = result.evaluations
            stability = session.explore("stability", "maximal", "new")
            summary["stability_pairs"] = len(stability.pairs)
            summary["stability_evaluations"] = stability.evaluations
        if workload == "serve":
            from ..serving import QueryServer, mixed_queries, run_workload

            queries = mixed_queries(graph, attributes)
            # One driver thread: the profile tracer is single-threaded
            # by design; `repro serve` is the concurrent driver.
            with QueryServer(graph) as server:
                report = run_workload(
                    server.serve, queries, requests=4 * len(queries), threads=1
                )
            summary["serve_requests"] = report.requests
            summary["serve_threads"] = report.threads
            summary["serve_qps"] = round(report.qps, 1)
            summary["serve_p99_ms"] = round(report.p99_ms, 3)
    return summary


def run_profile(
    dataset: str,
    workload: str,
    scale: float = 0.05,
    workers: int | str | None = None,
) -> ProfileReport:
    """Profile one workload over one dataset.

    Installs a fresh enabled tracer and a fresh metrics registry for the
    duration of the run (restoring the previous ones afterwards), so the
    returned report covers exactly this workload.  ``workers`` runs the
    workload inside a :func:`repro.parallel.parallelism_scope`, so the
    trace shows the pool's re-parented chunk spans (``repro profile
    --workers N``); results are identical at any worker count.
    """
    if workload not in WORKLOADS:
        raise ConfigurationError(
            f"unknown profile workload {workload!r}; choose one of {WORKLOADS!r}"
        )
    graph = _load_graph(dataset, scale)
    tracer = Tracer(enabled=True)
    registry = MetricsRegistry()
    previous_tracer = set_tracer(tracer)
    previous_metrics = set_metrics(registry)
    try:
        with parallelism_scope(workers) as resolved_workers:
            summary = _run_workload(workload, graph, tracer)
    finally:
        set_tracer(previous_tracer)
        set_metrics(previous_metrics)
    snapshot = observability_snapshot(tracer.last_root, registry)
    return ProfileReport(
        dataset=dataset,
        workload=workload,
        scale=scale,
        trace=tracer.last_root,
        metrics=snapshot["metrics"],
        summary=summary,
        workers=resolved_workers,
    )
