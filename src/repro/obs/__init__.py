"""Observability: tracing, metrics, and profiling for the pipeline.

The package is dependency-free (stdlib only) and sits below every other
layer, so the substrate (:mod:`repro.frames`), the model layer
(:mod:`repro.core`), materialization and exploration can all report into
it without import cycles:

* :mod:`repro.obs.trace` — nested span trees with a context-manager /
  decorator API and a no-op fast path while disabled;
* :mod:`repro.obs.metrics` — counters, gauges and timing histograms in a
  process-wide registry;
* :mod:`repro.obs.export` — the JSON artifact shape and terminal
  renderings shared by benchmarks and the ``repro profile`` CLI.

The profile workload runner lives in :mod:`repro.obs.profile`; it is not
re-exported here because it imports the upper layers (datasets, session)
and must stay out of the substrate's import chain.

See ``docs/observability.md`` for the span model and metric catalogue.
"""

from .export import (
    observability_snapshot,
    render_metrics,
    render_span_tree,
    to_json,
    trace_to_dict,
)
from .metrics import MetricsRegistry, TimingHistogram, get_metrics, set_metrics
from .trace import (
    NullSpanHandle,
    Span,
    SpanHandle,
    Tracer,
    get_tracer,
    set_tracer,
    trace_span,
    traced,
)

__all__ = [
    "Span",
    "SpanHandle",
    "NullSpanHandle",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "trace_span",
    "traced",
    "MetricsRegistry",
    "TimingHistogram",
    "get_metrics",
    "set_metrics",
    "trace_to_dict",
    "observability_snapshot",
    "to_json",
    "render_span_tree",
    "render_metrics",
]
