"""Nested-span tracing with a disabled no-op fast path.

A :class:`Tracer` produces :class:`Span` trees — name, attributes, wall
and CPU time, children — through a context-manager API (:meth:`Tracer.span`)
and a decorator (:func:`traced`).  The module-level singleton (swappable
via :func:`set_tracer`) starts **disabled**: every instrumented call site
then costs one function call returning a shared no-op context manager, so
the library's hot paths stay within the measured overhead budget
(``benchmarks/bench_obs_overhead.py``).

When enabled, completed spans attach to their parent on exit; the most
recent top-level span is kept as :attr:`Tracer.last_root` so callers
(e.g. ``GraphTempoSession.last_trace``) can inspect where time went.
Span wall times also feed ``span.<name>`` timing histograms in the
metrics registry, giving per-operator latency distributions for free.
"""

from __future__ import annotations

import functools
import threading
import time
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from types import TracebackType
from typing import Any, TypeVar

from .metrics import get_metrics

__all__ = [
    "Span",
    "SpanHandle",
    "NullSpanHandle",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "trace_span",
    "traced",
]

_F = TypeVar("_F", bound=Callable[..., Any])


@dataclass
class Span:
    """One completed (or in-flight) traced operation."""

    name: str
    attributes: dict[str, Any] = field(default_factory=dict)
    wall_s: float = 0.0
    cpu_s: float = 0.0
    children: list["Span"] = field(default_factory=list)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """The first descendant (or self) with the given name."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def span_names(self) -> list[str]:
        """Every span name in the tree, preorder (repeats preserved)."""
        return [span.name for span in self.walk()]

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable rendering of the subtree."""
        out: dict[str, Any] = {
            "name": self.name,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
        }
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


class SpanHandle:
    """Context manager recording one span on a live tracer."""

    __slots__ = ("_tracer", "span", "_wall0", "_cpu0")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def __enter__(self) -> Span:
        self._tracer._stack.append(self.span)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self.span

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        span = self.span
        span.wall_s = time.perf_counter() - self._wall0
        span.cpu_s = time.process_time() - self._cpu0
        if exc_type is not None:
            span.attributes["error"] = exc_type.__name__
        self._tracer._close(span)


class NullSpanHandle:
    """The shared no-op context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None


_NULL_HANDLE = NullSpanHandle()


class Tracer:
    """Produces nested span trees; disabled by default.

    Not thread-safe by design — exploration and aggregation run on one
    thread per graph, and a per-thread tracer can be installed with
    :func:`set_tracer` where that changes.
    """

    __slots__ = ("enabled", "_stack", "last_root")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._stack: list[Span] = []
        #: The most recently completed top-level span.
        self.last_root: Span | None = None

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop any in-flight stack and the last recorded root."""
        self._stack.clear()
        self.last_root = None

    def span(self, name: str, **attributes: Any) -> SpanHandle | NullSpanHandle:
        """A context manager tracing one operation.

        Disabled tracers return a shared no-op handle without allocating;
        this is the fast path every instrumented call site goes through.
        """
        if not self.enabled:
            return _NULL_HANDLE
        return SpanHandle(self, Span(name, dict(attributes)))

    def attach(self, span: Span) -> None:
        """Adopt an externally completed span tree into the live trace.

        The span becomes a child of the currently open span (or the new
        ``last_root`` when none is open).  Used by
        :class:`~repro.parallel.ParallelExecutor` to re-parent worker
        span trees into the main trace; unlike :meth:`_close`, no timing
        metric is recorded — the worker already observed its own spans
        into the metrics delta the parent merges.
        """
        if not self.enabled:
            return
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.last_root = span

    def _close(self, span: Span) -> None:
        stack = self._stack
        if stack and stack[-1] is span:
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            self.last_root = span
        get_metrics().observe(f"span.{span.name}", span.wall_s)


_tracer = Tracer(enabled=False)
_tracer_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide tracer instrumented call sites report to."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer; returns the previous one.

    The swap happens under a lock so concurrent swappers (tests, worker
    initialisation, future serving sessions) see a consistent
    previous/next pair; readers stay lock-free — a module-global load is
    atomic under the GIL.
    """
    global _tracer
    with _tracer_lock:
        previous = _tracer
        _tracer = tracer
    return previous


def trace_span(name: str, **attributes: Any) -> SpanHandle | NullSpanHandle:
    """``get_tracer().span(...)`` — the one-liner call sites use."""
    return _tracer.span(name, **attributes)


def traced(name: str | None = None) -> Callable[[_F], _F]:
    """Decorator form: trace every call of the wrapped function.

    The span is named after the function's qualified name unless ``name``
    is given.  The tracer is resolved per call, so swapping the singleton
    (tests, per-run profiling) affects already-decorated functions.
    """

    def decorate(fn: _F) -> _F:
        span_name = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with _tracer.span(span_name):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
