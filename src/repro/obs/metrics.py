"""The metrics registry: counters, gauges and timing histograms.

One process-wide :class:`MetricsRegistry` (swappable for tests via
:func:`set_metrics`) absorbs the ad-hoc counting that used to live in
``MaterializedStore.StoreStats`` and extends it across the pipeline:
cache hits/derivations in :mod:`repro.materialize`, rows scanned in
:class:`repro.frames.Table`, Algorithm 1/2 step counts in
:mod:`repro.core`, and chain evaluations / pruning counts in
:mod:`repro.exploration`.

Metric names are dotted, lowercase, and stable — see
``docs/observability.md`` for the full catalogue.  Counter updates are a
single dict operation so instrumented hot paths stay within the measured
overhead budget (see ``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import threading
from collections.abc import Mapping
from typing import Any

__all__ = [
    "TimingHistogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
]

#: Histogram bucket upper bounds in seconds (log10 ladder, microseconds
#: to ten seconds); observations above the last bound land in ``+inf``.
_BUCKET_BOUNDS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


class TimingHistogram:
    """Duration samples for one named timer.

    Keeps count/total/min/max plus a fixed log-scale bucket ladder — enough
    to read tail behaviour from a JSON snapshot without storing samples.
    """

    __slots__ = ("count", "total", "min", "max", "_buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self._buckets = [0] * (len(_BUCKET_BOUNDS) + 1)

    def observe(self, seconds: float) -> None:
        """Record one duration sample (in seconds)."""
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        for i, bound in enumerate(_BUCKET_BOUNDS):
            if seconds <= bound:
                self._buckets[i] += 1
                return
        self._buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def dump(self) -> dict[str, Any]:
        """The raw internal state (for cross-process merging)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": list(self._buckets),
        }

    def merge(self, dump: Mapping[str, Any]) -> None:
        """Fold another histogram's :meth:`dump` into this one."""
        self.count += dump["count"]
        self.total += dump["total"]
        if dump["count"]:
            self.min = min(self.min, dump["min"])
            self.max = max(self.max, dump["max"])
        for i, n in enumerate(dump["buckets"]):
            self._buckets[i] += n

    def snapshot(self) -> dict[str, Any]:
        """A JSON-serializable summary of the samples seen so far."""
        buckets = {
            f"le_{bound:g}s": n
            for bound, n in zip(_BUCKET_BOUNDS, self._buckets)
            if n
        }
        if self._buckets[-1]:
            buckets["le_inf"] = self._buckets[-1]
        return {
            "count": self.count,
            "total_s": self.total,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
            "mean_s": self.mean,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Named counters, gauges and timing histograms.

    Counters are monotonically increasing integers (``inc``), gauges are
    last-write-wins floats (``gauge``), and timings are
    :class:`TimingHistogram` samples (``observe``).  Reads of unknown
    names return zero rather than raising, so report code never has to
    guard against a path that happened not to run.
    """

    __slots__ = ("_counters", "_gauges", "_timings")

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._timings: dict[str, TimingHistogram] = {}

    # -- writes --------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name`` (creating it at 0)."""
        counters = self._counters
        counters[name] = counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value``."""
        self._gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration sample under the timer ``name``."""
        histogram = self._timings.get(name)
        if histogram is None:
            histogram = self._timings[name] = TimingHistogram()
        histogram.observe(seconds)

    # -- reads ---------------------------------------------------------

    def counter(self, name: str) -> int:
        """The counter's current value (0 when never incremented)."""
        return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> float:
        """The gauge's current value (0.0 when never set)."""
        return self._gauges.get(name, 0.0)

    def timing(self, name: str) -> TimingHistogram | None:
        """The histogram for ``name``, or ``None`` when never observed."""
        return self._timings.get(name)

    def snapshot(self) -> dict[str, Any]:
        """A JSON-serializable snapshot of every metric."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "timings": {
                name: histogram.snapshot()
                for name, histogram in sorted(self._timings.items())
            },
        }

    def dump(self) -> dict[str, Any]:
        """The registry's raw state, for :meth:`merge` across processes.

        Unlike :meth:`snapshot` (a presentation format), the dump keeps
        histograms as raw bucket arrays so merging is exact.
        """
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "timings": {
                name: histogram.dump()
                for name, histogram in self._timings.items()
            },
        }

    def merge(self, dump: Mapping[str, Any]) -> None:
        """Fold another registry's :meth:`dump` into this one.

        Counters and histogram samples add; gauges are last-write-wins
        (the merged dump's value overwrites).  This is how
        :class:`~repro.parallel.ParallelExecutor` re-homes each worker
        chunk's metric delta, so a parallel run's totals equal the
        serial run's.
        """
        for name, value in dump["counters"].items():
            self.inc(name, value)
        for name, value in dump["gauges"].items():
            self.gauge(name, value)
        for name, timing_dump in dump["timings"].items():
            histogram = self._timings.get(name)
            if histogram is None:
                histogram = self._timings[name] = TimingHistogram()
            histogram.merge(timing_dump)

    def reset(self) -> None:
        """Drop every metric (tests and per-run profiling)."""
        self._counters.clear()
        self._gauges.clear()
        self._timings.clear()


_registry = MetricsRegistry()
_registry_lock = threading.Lock()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry the instrumented library writes to."""
    return _registry


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one.

    The swap happens under a lock so concurrent swappers (tests, worker
    initialisation, future serving sessions) see a consistent
    previous/next pair; readers stay lock-free — a module-global load is
    atomic under the GIL.
    """
    global _registry
    with _registry_lock:
        previous = _registry
        _registry = registry
    return previous
