"""An interactive exploration session — the framework the paper's
conclusions announce ("we plan to develop GraphTempo into an interactive
exploration framework that will assist users navigate large graphs and
detect intervals and attribute groups of interest").

:class:`GraphTempoSession` is a stateful facade over the whole library:
it owns one temporal graph, a cube for cached aggregation, and exposes
the operators, evolution, exploration (single-group and group-sweep) and
reporting through one fluent object.  Window arguments accept base time
labels, ``(first, last)`` span pairs, and hierarchy unit labels.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from typing import Any

from .analysis import dataset_report, evolution_report, exploration_report
from .core import (
    AggregateGraph,
    EvolutionAggregate,
    TemporalGraph,
    TimeHierarchy,
    aggregate_evolution,
    difference,
    intersection,
    project,
    union,
)
from .core.granularity import coarsen
from .exploration import (
    EntityKind,
    EventType,
    ExplorationResult,
    ExtendSide,
    Goal,
    GroupExplorationResult,
    explore,
    explore_groups,
    suggest_threshold,
)
from .core.updates import SnapshotUpdate
from .obs.metrics import get_metrics
from .obs.trace import Span, get_tracer, trace_span
from .olap import TemporalGraphCube
from .parallel import (
    Executor,
    executor_scope,
    parallelism_scope,
    resolve_parallelism,
)
from .serving import QueryServer, Served
from .streaming import GraphVersion, StreamEvent, StreamingStore
from .errors import UnknownLabelError, ValidationError

__all__ = ["GraphTempoSession"]

#: A window argument: labels, or an inclusive (first, last) span pair.
WindowLike = Iterable[Hashable] | tuple[Hashable, Hashable]


class GraphTempoSession:
    """One graph, one conversation.

    Parameters
    ----------
    graph:
        The temporal attributed graph to explore.
    hierarchy:
        Optional time hierarchy; its unit labels become usable wherever
        a window is expected, and :meth:`zoom_out` uses it.
    parallelism:
        Session-wide default worker count (``None`` inherits the ambient
        default, an ``int`` or ``"auto"`` pins it) — every aggregation
        and exploration the session runs resolves inside a
        :func:`repro.parallel.parallelism_scope` carrying this value.
        Results are identical at any setting (see ``docs/parallelism.md``).
    executor:
        Pin every session fan-out to one executor instance — typically a
        persistent :class:`~repro.parallel.ShardedExecutor` (or
        :func:`repro.parallel.shared_fabric`), so aggregations,
        explorations and served queries all reuse one warm pool.  Takes
        precedence over ``parallelism`` resolution; the session does not
        own the executor (close it separately).  Results are identical
        either way.
    storage:
        Optional storage backend name (see :mod:`repro.storage` and
        ``docs/storage.md``); the session graph — and every version the
        streaming store publishes into it — is pinned to that backend.
        ``None`` inherits the graph's selection or the
        ``REPRO_STORAGE_BACKEND`` environment default.  Results are
        identical for every registered backend.

    Examples
    --------
    >>> from repro.datasets import paper_example
    >>> session = GraphTempoSession(paper_example())
    >>> agg = session.aggregate(["gender"], window=("t0", "t1"))
    >>> agg.node_weight(("f",))
    3
    """

    def __init__(
        self,
        graph: TemporalGraph,
        hierarchy: TimeHierarchy | None = None,
        parallelism: int | str | None = None,
        storage: str | None = None,
        executor: Executor | None = None,
    ) -> None:
        #: Storage backend name pinned for this session (``None``
        #: inherits the graph's own selection / the env default).  Every
        #: graph the session adopts — including versions published by
        #: the streaming store — is re-pinned to it.
        self.storage: str | None = storage
        if storage is not None:
            graph = graph.with_storage(storage)
        self.graph = graph
        self.hierarchy = hierarchy
        self.cube = TemporalGraphCube(graph, hierarchy=hierarchy)
        #: Resolved session-wide worker count (``None`` = ambient).
        self.parallelism: int | None = (
            None if parallelism is None else resolve_parallelism(parallelism)
        )
        #: Pinned executor instance (``None`` = resolve per fan-out).
        self.executor: Executor | None = executor
        self._stream: StreamingStore | None = None
        self._server: QueryServer | None = None

    def _parallel_scope(self) -> Any:
        """The scope every session operation resolves parallelism in."""
        if self.executor is not None:
            return executor_scope(self.executor)
        return parallelism_scope(self.parallelism)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """The process-wide metric snapshot (counters/gauges/timings).

        Counters are always on; the snapshot reflects everything this
        process did, not only this session's calls.  Reset with
        ``repro.obs.get_metrics().reset()``.
        """
        return get_metrics().snapshot()

    def last_trace(self) -> Span | None:
        """The most recent completed root span, if tracing is enabled.

        Enable with ``repro.obs.get_tracer().enabled = True`` (or
        install a fresh ``Tracer(enabled=True)`` via ``set_tracer``).
        """
        return get_tracer().last_root

    # ------------------------------------------------------------------
    # Window handling
    # ------------------------------------------------------------------

    def window(self, window: WindowLike | None) -> tuple[Hashable, ...]:
        """Resolve a window argument to base time labels.

        A 2-tuple whose elements are both timeline labels resolves as an
        inclusive span; otherwise the argument is an iterable of labels
        and/or hierarchy units; ``None`` is the whole timeline.
        """
        if window is None:
            return self.graph.timeline.labels
        if (
            isinstance(window, tuple)
            and len(window) == 2
            and window[0] in self.graph.timeline
            and window[1] in self.graph.timeline
        ):
            return self.graph.timeline.span(window[0], window[1])
        resolved: list[Hashable] = []
        for label in window:
            if label in self.graph.timeline:
                resolved.append(label)
            elif (
                self.hierarchy is not None
                and label in self.hierarchy.unit_labels
            ):
                resolved.extend(
                    m
                    for m in self.hierarchy.members(label)
                    if m in self.graph.timeline
                )
            else:
                raise UnknownLabelError(f"unknown time point or unit: {label!r}")
        return tuple(dict.fromkeys(resolved))

    # ------------------------------------------------------------------
    # Streaming ingestion
    # ------------------------------------------------------------------

    @property
    def stream(self) -> StreamingStore:
        """The session's streaming store, created on first use.

        The store's invalidation hook is what keeps the session honest:
        every published version replaces :attr:`graph` and rebuilds the
        aggregation cube, so cached cuboids can never serve a stale
        timeline (the cache-invalidation seam of ROADMAP item 3).
        Readers needing a stable graph while appends land should
        ``session.stream.pin()`` a version instead of holding
        :attr:`graph`.
        """
        if self._stream is None:
            store = StreamingStore(self.graph)
            store.on_append(self._refresh_from)
            self._stream = store
        return self._stream

    def _refresh_from(self, version: GraphVersion) -> None:
        """Invalidation hook: adopt a published version.

        Everything derived from the superseded graph is dropped and
        rebuilt here — the cube *and* the serving state (server cube +
        result-cache entries for older versions) — so neither the
        session nor its server can answer from a stale timeline.
        """
        self.graph = (
            version.graph
            if self.storage is None
            else version.graph.with_storage(self.storage)
        )
        self.cube = TemporalGraphCube(self.graph, hierarchy=self.hierarchy)
        if self._server is not None:
            self._server.rebind(version, cube=self.cube)
        get_metrics().inc("streaming.session_refreshes")

    def append(self, update: SnapshotUpdate) -> "GraphTempoSession":
        """Append one snapshot to the session graph (chainable).

        Routed through the streaming store, so registered views stay
        current and the session cube is invalidated per append.
        """
        with trace_span("session.append", time=update.time):
            self.stream.append_snapshot(update)
        return self

    def ingest(self, events: Iterable[StreamEvent]) -> "GraphTempoSession":
        """Ingest a flat node/edge event stream (chainable).

        Events are batched into one snapshot per time point (first-seen
        order) and appended through the streaming store.
        """
        with trace_span("session.ingest"):
            self.stream.update(events)
        return self

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------

    def project(self, window: WindowLike) -> TemporalGraph:
        """Time projection over a window (Definition 2.2)."""
        return project(self.graph, self.window(window))

    def union(self, first: WindowLike, second: WindowLike = ()) -> TemporalGraph:
        """Union graph over two windows (Definition 2.3)."""
        return union(self.graph, self.window(first), self.window(second) if second else ())

    def intersection(self, first: WindowLike, second: WindowLike) -> TemporalGraph:
        """Intersection graph over two windows (Definition 2.4)."""
        return intersection(self.graph, self.window(first), self.window(second))

    def difference(self, first: WindowLike, second: WindowLike) -> TemporalGraph:
        """Difference graph ``first - second`` (Definition 2.5)."""
        return difference(self.graph, self.window(first), self.window(second))

    # ------------------------------------------------------------------
    # Aggregation (cached via the cube)
    # ------------------------------------------------------------------

    def aggregate(
        self,
        attributes: Sequence[str],
        window: WindowLike | None = None,
        distinct: bool = True,
    ) -> AggregateGraph:
        """Aggregate over a window, served through the session cube."""
        with trace_span(
            "session.aggregate",
            attributes=tuple(attributes),
            distinct=distinct,
        ), self._parallel_scope():
            return self.cube.cuboid(
                attributes, times=self.window(window), distinct=distinct
            )

    def materialize(
        self,
        attributes: Sequence[str],
        distinct: bool = False,
        per_time_point: bool = True,
    ) -> "GraphTempoSession":
        """Warm the cube (chainable)."""
        self.cube.materialize(
            attributes, distinct=distinct, per_time_point=per_time_point
        )
        return self

    # ------------------------------------------------------------------
    # Evolution and exploration
    # ------------------------------------------------------------------

    def evolution(
        self,
        old: WindowLike,
        new: WindowLike,
        attributes: Sequence[str],
    ) -> EvolutionAggregate:
        """Aggregated evolution between two windows (Definition 2.7)."""
        with trace_span(
            "session.evolution", attributes=tuple(attributes)
        ), self._parallel_scope():
            return aggregate_evolution(
                self.graph, self.window(old), self.window(new), attributes
            )

    def explore(
        self,
        event: EventType | str,
        goal: Goal | str = Goal.MINIMAL,
        extend: ExtendSide | str = ExtendSide.NEW,
        k: int | None = None,
        entity: EntityKind | str = EntityKind.EDGES,
        attributes: Sequence[str] = (),
        key: Any = None,
    ) -> ExplorationResult:
        """One Table-1 exploration case; enum arguments accept strings.

        With ``k=None`` the threshold is initialized per Section 3.5
        (max of consecutive-pair counts for minimal goals' seeds, which
        guarantees a non-empty seed row, and likewise for maximal).
        """
        event = EventType(event) if isinstance(event, str) else event
        goal = Goal(goal) if isinstance(goal, str) else goal
        extend = ExtendSide(extend) if isinstance(extend, str) else extend
        entity = EntityKind(entity) if isinstance(entity, str) else entity
        with trace_span(
            "session.explore",
            event=str(event),
            goal=str(goal),
            extend=str(extend),
        ), self._parallel_scope():
            if k is None:
                k = suggest_threshold(
                    self.graph, event, mode="max",
                    entity=entity, attributes=attributes, key=key,
                )
            return explore(
                self.graph, event, goal, extend, k,
                entity=entity, attributes=attributes, key=key,
            )

    def explore_groups(
        self,
        event: EventType | str,
        goal: Goal | str,
        extend: ExtendSide | str,
        k: int,
        attributes: Sequence[str],
        entity: EntityKind | str = EntityKind.EDGES,
    ) -> GroupExplorationResult:
        """Group-sweep exploration (which groups are interesting?)."""
        event = EventType(event) if isinstance(event, str) else event
        goal = Goal(goal) if isinstance(goal, str) else goal
        extend = ExtendSide(extend) if isinstance(extend, str) else extend
        entity = EntityKind(entity) if isinstance(entity, str) else entity
        with trace_span(
            "session.explore_groups",
            event=str(event),
            attributes=tuple(attributes),
        ), self._parallel_scope():
            return explore_groups(
                self.graph, event, goal, extend, k, attributes, entity=entity
            )

    # ------------------------------------------------------------------
    # Zoom and reports
    # ------------------------------------------------------------------

    def zoom_out(self, semantics: str = "union") -> "GraphTempoSession":
        """A new session over the hierarchy-coarsened graph."""
        if self.hierarchy is None:
            raise ValidationError("zoom_out requires a session hierarchy")
        return GraphTempoSession(
            coarsen(self.graph, self.hierarchy, semantics),
            parallelism=self.parallelism,
            executor=self.executor,
        )

    # ------------------------------------------------------------------
    # Query serving
    # ------------------------------------------------------------------

    @property
    def serving(self) -> QueryServer:
        """The session's query server, created on first use.

        The server shares the session cube (so materialized cuboids
        serve queries) and is safe to hammer from many threads; appends
        through :meth:`append`/:meth:`ingest` rebind it to the published
        version and evict superseded cache entries, so served results
        are always bit-identical to evaluating against the current
        graph.
        """
        if self._server is None:
            self._server = QueryServer(
                self.graph,
                cube=self.cube,
                hierarchy=self.hierarchy,
                executor=self.executor,
            )
        return self._server

    def serve(self, text: str) -> Served:
        """Serve one query with provenance (result, version, route)."""
        with self._parallel_scope():
            return self.serving.serve(text)

    def query(self, text: str) -> Any:
        """Run a query-language statement against the session graph.

        See :mod:`repro.query.parser` for the grammar.  Example:
        ``session.query("aggregate gender over union [t0], [t1]")``.
        Served through :attr:`serving`, so repeated queries hit the
        result cache; results are bit-identical to
        :func:`repro.query.run_query` on the session graph.
        """
        return self.serve(text).result

    def report(self) -> str:
        """The dataset size report for the session graph."""
        return dataset_report(self.graph, "session graph")

    def evolution_text(
        self,
        old: WindowLike,
        new: WindowLike,
        attributes: Sequence[str],
        min_publications: int | None = None,
    ) -> str:
        """A rendered Fig.-12-style evolution report."""
        return evolution_report(
            self.graph,
            self.window(old),
            self.window(new),
            attributes,
            min_publications=min_publications,
        ).text

    def exploration_text(
        self,
        event: EventType | str,
        goal: Goal | str,
        extend: ExtendSide | str,
        thresholds: Sequence[int],
        attributes: Sequence[str] = (),
        key: Any = None,
    ) -> str:
        """A rendered Fig.-13/14-style exploration report."""
        event = EventType(event) if isinstance(event, str) else event
        goal = Goal(goal) if isinstance(goal, str) else goal
        extend = ExtendSide(extend) if isinstance(extend, str) else extend
        return exploration_report(
            self.graph, event, goal, extend, thresholds,
            attributes=attributes, key=key,
        ).text
