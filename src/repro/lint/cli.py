"""Command line front end: ``python -m repro.lint [paths...]``.

Exit status: 0 when clean, 1 when violations were found, 2 on
configuration or usage errors — the same contract as flake8/ruff, so CI
can treat any non-zero status as a failure.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from ..errors import ConfigurationError
from .config import load_config, selected_rules
from .engine import all_rules, lint_paths
from .rules import rule_catalog

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="GraphTempo invariant linter (rules GT001-GT006).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        default=None,
        help="pyproject.toml to read [tool.repro-lint] from "
        "(default: ./pyproject.toml when present)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (e.g. GT001,GT003)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, summary in rule_catalog():
            print(f"{rule_id}  {summary}")
        return 0
    try:
        config = load_config(args.config)
        if args.select:
            wanted = [part.strip() for part in args.select.split(",") if part.strip()]
            unknown = sorted(set(wanted) - set(all_rules()))
            if unknown:
                raise ConfigurationError(f"unknown rule ids: {unknown}")
            config = selected_rules(config, wanted)
        violations = lint_paths([Path(p) for p in args.paths], config)
    except ConfigurationError as exc:
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return 2
    for violation in violations:
        print(violation.render())
    if not args.quiet:
        noun = "violation" if len(violations) == 1 else "violations"
        print(
            f"repro.lint: {len(violations)} {noun} "
            f"({len(config.select)} rules)",
            file=sys.stderr,
        )
    return 1 if violations else 0
