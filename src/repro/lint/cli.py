"""Command line front end: ``python -m repro.lint [paths...]``.

Exit status: 0 when clean, 1 when violations were found, 2 on
configuration or usage errors — the same contract as flake8/ruff, so CI
can treat any non-zero status as a failure.

``--format json`` emits a machine-readable result document (CI
artifacts); ``--report PATH`` additionally writes the purity registry
(schema ``repro-lint-purity/1``) produced by the whole-program analyzer
— the soundness contract the result cache will be built on.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from ..errors import ConfigurationError
from .config import LintConfig, load_config, selected_rules
from .engine import Violation, all_rules, lint_paths, load_modules
from .rules import rule_catalog

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="GraphTempo invariant linter (rules GT001-GT012).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        default=None,
        help="pyproject.toml to read [tool.repro-lint] from "
        "(default: ./pyproject.toml when present)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (e.g. GT001,GT003)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to skip (applied after --select)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write the whole-program purity registry (JSON) to PATH",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line",
    )
    return parser


def _split_rule_ids(raw: str, flag: str) -> list[str]:
    wanted = [part.strip() for part in raw.split(",") if part.strip()]
    unknown = sorted(set(wanted) - set(all_rules()))
    if unknown:
        raise ConfigurationError(f"unknown rule ids in {flag}: {unknown}")
    return wanted


def _narrow_selection(
    config: LintConfig, select: str | None, ignore: str | None
) -> LintConfig:
    if select:
        config = selected_rules(config, _split_rule_ids(select, "--select"))
    if ignore:
        dropped = set(_split_rule_ids(ignore, "--ignore"))
        # Built directly: selected_rules treats an empty list as "keep
        # everything", but ignoring every selected rule must yield none.
        config = LintConfig(
            select=tuple(
                rule_id
                for rule_id in config.select
                if rule_id not in dropped
            ),
            exclude=config.exclude,
            rules=config.rules,
        )
    return config


def _write_purity_report(
    paths: Sequence[Path], config: LintConfig, destination: Path
) -> None:
    from .callgraph import build_program
    from .purity import analyze_purity, report_dict

    modules, _ = load_modules(paths, config)
    program = build_program(modules)
    report = analyze_purity(program)
    destination.write_text(
        json.dumps(report_dict(program, report), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )


def _emit_json(config: LintConfig, violations: Sequence[Violation]) -> None:
    document = {
        "schema": "repro-lint/1",
        "rules": list(config.select),
        "violations": [
            {
                "rule": violation.rule,
                "path": violation.path,
                "line": violation.line,
                "col": violation.col,
                "message": violation.message,
            }
            for violation in violations
        ],
        "summary": {"violations": len(violations)},
    }
    print(json.dumps(document, indent=2, sort_keys=True))


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, summary in rule_catalog():
            print(f"{rule_id}  {summary}")
        return 0
    try:
        config = _narrow_selection(
            load_config(args.config), args.select, args.ignore
        )
        paths = [Path(p) for p in args.paths]
        violations = lint_paths(paths, config)
        if args.report:
            _write_purity_report(paths, config, Path(args.report))
    except ConfigurationError as exc:
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        _emit_json(config, violations)
    else:
        for violation in violations:
            print(violation.render())
    if not args.quiet:
        noun = "violation" if len(violations) == 1 else "violations"
        print(
            f"repro.lint: {len(violations)} {noun} "
            f"({len(config.select)} rules)",
            file=sys.stderr,
        )
    return 1 if violations else 0
