"""`repro.lint` — a whole-program invariant analyzer for GraphTempo.

The paper's algorithms rest on conventions nothing in Python enforces:
temporal operators (Algorithm 1) and aggregation (Algorithm 2) must not
mutate their input frames, hot paths must stay vectorized numpy
(Section 4's storage model), failures must come from the
:mod:`repro.errors` taxonomy.  On top of those per-module checks
(GT001–GT006), the whole-program layer builds a cross-module symbol
table and call graph (:mod:`repro.lint.callgraph`), infers transitive
purity (:mod:`repro.lint.purity`), and enforces the concurrency
contracts :mod:`repro.parallel` relies on (GT007–GT012): fork-safe
workers, read-only shared payloads, no mutable module globals, guarded
singleton swaps, pure operator contexts, no unguarded shared state.

Programmatic use::

    from repro.lint import load_config, lint_paths
    violations = lint_paths(["src"], load_config("pyproject.toml"))

    from repro.lint import build_program, analyze_purity, load_modules
    modules, _ = load_modules(["src"], load_config())
    report = analyze_purity(build_program(modules))

Command line::

    python -m repro.lint src tests
    python -m repro.lint --select GT003 src
    python -m repro.lint --format json --report purity.json src
    python -m repro.lint --list-rules

Rules are configured from ``[tool.repro-lint]`` in ``pyproject.toml``
(see :mod:`repro.lint.config`) and suppressed per line with
``# lint: ignore[GT001]`` (see :mod:`repro.lint.engine`).
"""

from .config import DEFAULTS, LintConfig, RuleSettings, load_config
from .engine import (
    Module,
    ProgramRule,
    Rule,
    Violation,
    all_rules,
    lint_paths,
    load_modules,
)
from .callgraph import Program, build_program
from .purity import FunctionPurity, PurityReport, analyze_purity, report_dict
from .cli import main

__all__ = [
    "DEFAULTS",
    "FunctionPurity",
    "LintConfig",
    "Module",
    "Program",
    "ProgramRule",
    "PurityReport",
    "Rule",
    "RuleSettings",
    "Violation",
    "all_rules",
    "analyze_purity",
    "build_program",
    "lint_paths",
    "load_config",
    "load_modules",
    "main",
    "report_dict",
]
