"""`repro.lint` — an AST-based invariant linter for the GraphTempo codebase.

The paper's algorithms rest on conventions nothing in Python enforces:
temporal operators (Algorithm 1) and aggregation (Algorithm 2) must not
mutate their input frames, hot paths must stay vectorized numpy
(Section 4's storage model), failures must come from the
:mod:`repro.errors` taxonomy.  This package checks those invariants
statically, using only the stdlib :mod:`ast` module.

Programmatic use::

    from repro.lint import load_config, lint_paths
    violations = lint_paths(["src"], load_config("pyproject.toml"))

Command line::

    python -m repro.lint src tests
    python -m repro.lint --select GT003 src
    python -m repro.lint --list-rules

Rules are configured from ``[tool.repro-lint]`` in ``pyproject.toml``
(see :mod:`repro.lint.config`) and suppressed per line with
``# lint: ignore[GT001]`` (see :mod:`repro.lint.engine`).
"""

from .config import DEFAULTS, LintConfig, RuleSettings, load_config
from .engine import Module, Rule, Violation, all_rules, lint_paths
from .cli import main

__all__ = [
    "DEFAULTS",
    "LintConfig",
    "Module",
    "Rule",
    "RuleSettings",
    "Violation",
    "all_rules",
    "lint_paths",
    "load_config",
    "main",
]
