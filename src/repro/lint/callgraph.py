"""Cross-module symbol table and call graph for the whole-program rules.

The per-module rules (GT001-GT006) only ever look at one AST at a time.
The concurrency and purity rules (GT007-GT012) need to answer questions
like "what does this operator transitively call?" and "is the function
submitted to the executor defined at module level?", which requires a
view of the *program*: every linted module, its top-level symbols, its
imports, and a resolved call graph.

:func:`build_program` turns the engine's loaded :class:`~repro.lint.engine.Module`
list into a :class:`Program`:

* a **symbol table** per module — top-level functions, classes and their
  methods, module-level globals (with mutability/thread-locality hints),
  and the import table (alias -> dotted target, including package-relative
  imports resolved against the module's dotted name);
* a **function table** mapping qualified names
  (``repro.core.operators.project``, ``pkg.mod.Class.method``,
  ``pkg.mod.outer.<locals>.inner``) to :class:`FunctionInfo`;
* a **call graph**: for every function, the :class:`CallSite` list with
  each callee resolved to a qualified name where static resolution is
  possible, and counted as *unresolved* (the dynamic-call fallback)
  where it is not.

Resolution is deliberately conservative: a name is only resolved when it
can be traced to a module-level definition or an import; attribute calls
on arbitrary objects, calls through containers, and ``getattr`` remain
unresolved and are surfaced as such (:attr:`FunctionInfo` callers can see
``unresolved_calls``) so downstream analyses never silently guess.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field
from typing import Any

from .engine import Module

__all__ = [
    "CallSite",
    "FunctionInfo",
    "GlobalVar",
    "ModuleSymbols",
    "Program",
    "build_program",
    "dotted",
]

#: AST node types that define a function body.
FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef

#: Module-level value expressions considered mutable containers.
_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)

#: Constructor names whose results are mutable containers.
_MUTABLE_FACTORIES = {
    "list",
    "dict",
    "set",
    "bytearray",
    "defaultdict",
    "deque",
    "OrderedDict",
    "Counter",
}

#: Constructor names producing thread-confined state (exempt from the
#: shared-mutable-global rule: each thread sees its own copy).
_THREAD_LOCAL_FACTORIES = {"local", "threading.local"}


def dotted(node: ast.expr) -> str | None:
    """Flatten a ``Name``/``Attribute`` chain to ``a.b.c``, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass(frozen=True)
class GlobalVar:
    """One module-level binding."""

    name: str
    line: int
    mutable: bool
    thread_local: bool


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    #: Qualified callee (``pkg.mod.fn``; external targets keep their
    #: imported dotted path, e.g. ``os.environ.get``), or ``None`` when
    #: the callee could not be statically resolved.
    callee: str | None
    #: Source-ish rendering of the callee expression, for messages.
    raw: str


@dataclass
class FunctionInfo:
    """One function (or method, or nested function) in the program."""

    qualname: str
    module: Module
    node: FunctionNode
    #: Enclosing class name for methods, ``None`` otherwise.
    class_name: str | None = None
    #: Qualname of the enclosing function for nested defs.
    parent: str | None = None
    calls: list[CallSite] = field(default_factory=list)
    #: Qualnames of functions defined inside this one.
    nested: list[str] = field(default_factory=list)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def is_nested(self) -> bool:
        return self.parent is not None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def line(self) -> int:
        return self.node.lineno

    def param_names(self) -> list[str]:
        """Positional-ish parameter names, declaration order."""
        args = self.node.args
        names = [a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names


@dataclass
class ModuleSymbols:
    """Top-level symbols of one module."""

    module: Module
    #: Top-level function name -> qualname.
    functions: dict[str, str] = field(default_factory=dict)
    #: Class name -> {method name -> qualname}.
    classes: dict[str, dict[str, str]] = field(default_factory=dict)
    #: Module-level data bindings (assignments that are not defs/imports).
    globals: dict[str, GlobalVar] = field(default_factory=dict)
    #: Import alias -> dotted target ("numpy", "repro.core.graph.TemporalGraph").
    imports: dict[str, str] = field(default_factory=dict)


@dataclass
class Program:
    """The whole linted program: modules, symbols, functions, call graph."""

    modules: dict[str, Module] = field(default_factory=dict)
    symbols: dict[str, ModuleSymbols] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Scratch space for cross-rule caches (submissions, purity).
    cache: dict[str, Any] = field(default_factory=dict)

    def functions_of(self, module: Module) -> list[FunctionInfo]:
        """Every function whose body lives in ``module``."""
        return [
            info
            for info in self.functions.values()
            if info.module.name == module.name
        ]

    def callers_of(self, qualname: str) -> list[tuple[FunctionInfo, CallSite]]:
        """Every resolved call site targeting ``qualname``."""
        found: list[tuple[FunctionInfo, CallSite]] = []
        for info in self.functions.values():
            for site in info.calls:
                if site.callee == qualname:
                    found.append((info, site))
        return found

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------

    def resolve(self, module_name: str, expr: ast.expr) -> str | None:
        """Resolve a ``Name``/``Attribute`` expression in module scope.

        Returns a qualified dotted name — canonicalized into the program
        where the target is a linted module, kept as the external dotted
        path otherwise — or ``None`` when the expression is not a static
        name chain or the base name is unknown.
        """
        path = dotted(expr)
        if path is None:
            return None
        return self.resolve_dotted(module_name, path)

    def resolve_dotted(self, module_name: str, path: str) -> str | None:
        """Resolve a dotted name string in a module's top-level scope."""
        symbols = self.symbols.get(module_name)
        if symbols is None:
            return None
        base, _, rest = path.partition(".")
        target: str | None = None
        if base in symbols.functions:
            target = symbols.functions[base]
        elif base in symbols.classes:
            target = f"{module_name}.{base}"
        elif base in symbols.imports:
            target = symbols.imports[base]
        elif base in symbols.globals:
            # A data global; attribute access through it is dynamic.
            return None
        else:
            return None
        full = f"{target}.{rest}" if rest else target
        return self._canonical(full)

    def _canonical(self, path: str) -> str:
        """Re-anchor a dotted path through linted-module re-exports.

        ``repro.core.union`` (imported into ``repro.core.__init__`` from
        ``repro.core.operators``) canonicalizes to
        ``repro.core.operators.union`` so every call site resolves to the
        defining module's qualname.
        """
        for _ in range(8):  # bounded: re-export chains are short
            head, _, leaf = path.rpartition(".")
            if not head or head not in self.symbols:
                return path
            symbols = self.symbols[head]
            if leaf in symbols.functions:
                return symbols.functions[leaf]
            if leaf in symbols.classes:
                return path
            if leaf in symbols.imports:
                path = symbols.imports[leaf]
                continue
            return path
        return path


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def _import_base(module: Module) -> list[str]:
    """The package parts relative imports resolve against."""
    parts = module.name.split(".") if module.name else []
    if module.path.name != "__init__.py" and parts:
        parts = parts[:-1]
    return parts


def _record_imports(module: Module, symbols: ModuleSymbols) -> None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                symbols.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            base_parts = list(_import_base(module))
            if node.level:
                up = node.level - 1
                if up:
                    base_parts = base_parts[: len(base_parts) - up]
                prefix = ".".join(base_parts)
            else:
                prefix = ""
            source = node.module or ""
            if node.level:
                origin = ".".join(p for p in (prefix, source) if p)
            else:
                origin = source
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                symbols.imports[local] = (
                    f"{origin}.{alias.name}" if origin else alias.name
                )


def _is_mutable_value(value: ast.expr | None) -> bool:
    if value is None:
        return False
    if isinstance(value, _MUTABLE_LITERALS):
        return True
    if isinstance(value, ast.Call):
        name = dotted(value.func)
        if name is not None and name.split(".")[-1] in _MUTABLE_FACTORIES:
            return True
    return False


def _is_thread_local_value(value: ast.expr | None) -> bool:
    if not isinstance(value, ast.Call):
        return False
    name = dotted(value.func)
    return name is not None and (
        name in _THREAD_LOCAL_FACTORIES or name.endswith(".local")
    )


def _record_globals(module: Module, symbols: ModuleSymbols) -> None:
    for node in module.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
        else:
            continue
        for target in targets:
            leaves = (
                target.elts
                if isinstance(target, (ast.Tuple, ast.List))
                else [target]
            )
            for leaf in leaves:
                if isinstance(leaf, ast.Name):
                    symbols.globals[leaf.id] = GlobalVar(
                        name=leaf.id,
                        line=node.lineno,
                        mutable=_is_mutable_value(value),
                        thread_local=_is_thread_local_value(value),
                    )


def _collect_functions(
    module: Module, symbols: ModuleSymbols, program: Program
) -> None:
    """Register every def in the module under its qualified name."""

    def visit(
        body: Sequence[ast.stmt],
        scope: str,
        class_name: str | None,
        parent: str | None,
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{scope}.{node.name}"
                info = FunctionInfo(
                    qualname=qualname,
                    module=module,
                    node=node,
                    class_name=class_name,
                    parent=parent,
                )
                program.functions[qualname] = info
                if parent is None and class_name is None:
                    symbols.functions[node.name] = qualname
                elif class_name is not None and parent is None:
                    symbols.classes.setdefault(class_name, {})[
                        node.name
                    ] = qualname
                if parent is not None:
                    parent_info = program.functions.get(parent)
                    if parent_info is not None:
                        parent_info.nested.append(qualname)
                visit(node.body, f"{qualname}.<locals>", None, qualname)
            elif isinstance(node, ast.ClassDef):
                symbols.classes.setdefault(node.name, {})
                visit(node.body, f"{scope}.{node.name}", node.name, parent)
            elif isinstance(node, (ast.If, ast.Try)):
                visit(node.body, scope, class_name, parent)
                visit(node.orelse, scope, class_name, parent)
                for handler in getattr(node, "handlers", []):
                    visit(handler.body, scope, class_name, parent)
                visit(getattr(node, "finalbody", []), scope, class_name, parent)

    visit(module.tree.body, module.name, None, None)


def _body_nodes(func: FunctionNode) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs.

    Lambda bodies *are* walked — a lambda has no qualname of its own, so
    its calls are attributed to the enclosing function.
    """
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _resolve_call(
    program: Program, info: FunctionInfo, call: ast.Call
) -> str | None:
    path = dotted(call.func)
    if path is None:
        return None
    base, _, rest = path.partition(".")
    # self.method() resolves within the enclosing class.
    if base == "self" and info.class_name is not None and rest and "." not in rest:
        methods = program.symbols[info.module.name].classes.get(
            info.class_name, {}
        )
        return methods.get(rest)
    # Nested functions of the current scope win over module scope.
    nested_qualname = f"{info.qualname}.<locals>.{base}"
    if not rest and nested_qualname in program.functions:
        return nested_qualname
    return program.resolve_dotted(info.module.name, path)


def _collect_calls(program: Program) -> None:
    for info in program.functions.values():
        for node in _body_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            raw = dotted(node.func) or "<dynamic>"
            info.calls.append(
                CallSite(
                    node=node,
                    callee=_resolve_call(program, info, node),
                    raw=raw,
                )
            )


def build_program(modules: Sequence[Module]) -> Program:
    """Build the whole-program view over the loaded modules.

    Modules are indexed by dotted name; when two paths map to the same
    name (should not happen under one root) the later load wins.
    """
    program = Program()
    for module in sorted(modules, key=lambda m: m.name):
        program.modules[module.name] = module
        symbols = ModuleSymbols(module=module)
        program.symbols[module.name] = symbols
        _record_imports(module, symbols)
        _record_globals(module, symbols)
        _collect_functions(module, symbols, program)
    _collect_calls(program)
    return program
