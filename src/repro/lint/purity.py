"""Transitive purity / side-effect inference over the call graph.

A function is **impure** when it has a *direct effect* or transitively
calls an impure function; it is **pure** otherwise.  Direct effects are
the statically visible ones:

* rebinding a module global (``global X`` + assignment);
* mutating a module global (attribute/subscript write, ``del``, or a
  known mutating method call on a module-level name) — unless the global
  is a ``threading.local`` holder, which is thread-confined by definition;
* mutating a parameter (attribute/subscript write, ``del``, augmented
  assignment, or a mutating method call whose receiver is a parameter —
  including ``self``, so state-changing methods classify impure);
* calling a known-impure builtin (``print``, ``open``, ``input``,
  ``exec``, ``eval``, ``setattr``, ``delattr``, ...);
* calling into a known-impure module (``os``, ``sys``, ``random``,
  ``time``, ``logging``, ``subprocess``, ...) — environment reads count:
  they make results depend on process state.

Unresolved (dynamic) calls do **not** flip a function to impure; they are
counted per function (``unresolved_calls``) so consumers of the purity
registry — e.g. a result cache deciding what is safe to memoize — can
require both ``classification == "pure"`` and ``unresolved_calls == 0``
for a *sound* purity guarantee, or accept inferred purity where a weaker
contract suffices.  Nested functions are treated as called by their
definer (defining without calling is rare and the conservative direction
is the safe one).

The registry serializes to the ``repro-lint-purity/1`` JSON schema via
:func:`report_dict`; ``python -m repro.lint --report purity.json`` writes
it as a CI artifact (see ``docs/static_analysis.md``).
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from .callgraph import FunctionInfo, Program, dotted

__all__ = [
    "DEFAULT_IMPURE_BUILTINS",
    "DEFAULT_IMPURE_MODULES",
    "DEFAULT_MUTATOR_METHODS",
    "FunctionPurity",
    "PurityAnalyzer",
    "PurityReport",
    "analyze_purity",
    "report_dict",
]

#: Builtins whose call is itself a side effect (I/O, namespace mutation).
DEFAULT_IMPURE_BUILTINS: frozenset[str] = frozenset(
    {
        "print",
        "open",
        "input",
        "exec",
        "eval",
        "compile",
        "breakpoint",
        "setattr",
        "delattr",
        "__import__",
        "exit",
        "quit",
    }
)

#: Top-level modules whose functions read or write process/system state.
DEFAULT_IMPURE_MODULES: frozenset[str] = frozenset(
    {
        "os",
        "sys",
        "io",
        "random",
        "secrets",
        "time",
        "datetime",
        "logging",
        "socket",
        "subprocess",
        "shutil",
        "tempfile",
        "multiprocessing",
        "threading",
        "signal",
        "atexit",
        "warnings",
    }
)

#: Method names that mutate their receiver in place.
DEFAULT_MUTATOR_METHODS: frozenset[str] = frozenset(
    {
        "append",
        "add",
        "clear",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "discard",
        "update",
        "setdefault",
        "sort",
        "reverse",
        "fill",
        "put",
        "resize",
        "itemset",
        "write",
        "writelines",
    }
)


@dataclass
class FunctionPurity:
    """The inferred purity of one function."""

    qualname: str
    module: str
    line: int
    classification: str  # "pure" | "impure"
    #: Human-readable reasons; direct effects first, then impure callees.
    reasons: tuple[str, ...]
    #: Direct effects only (subset of reasons).
    direct_effects: tuple[str, ...]
    #: Resolved callee qualnames, sorted and deduplicated.
    callees: tuple[str, ...]
    unresolved_calls: int
    public: bool

    @property
    def is_pure(self) -> bool:
        return self.classification == "pure"


@dataclass
class PurityReport:
    """The purity registry: qualname -> :class:`FunctionPurity`."""

    functions: dict[str, FunctionPurity] = field(default_factory=dict)

    def classification(self, qualname: str) -> str | None:
        entry = self.functions.get(qualname)
        return entry.classification if entry else None

    def is_impure(self, qualname: str) -> bool:
        entry = self.functions.get(qualname)
        return entry is not None and not entry.is_pure

    def pure_functions(self) -> tuple[str, ...]:
        return tuple(
            sorted(q for q, e in self.functions.items() if e.is_pure)
        )


def _is_public(qualname: str) -> bool:
    return not any(
        part.startswith("_") and part != "__init__"
        for part in qualname.split(".")
    )


class PurityAnalyzer:
    """Run the direct-effect scan and the transitive fixpoint."""

    def __init__(
        self,
        program: Program,
        *,
        impure_builtins: frozenset[str] = DEFAULT_IMPURE_BUILTINS,
        impure_modules: frozenset[str] = DEFAULT_IMPURE_MODULES,
        mutator_methods: frozenset[str] = DEFAULT_MUTATOR_METHODS,
    ) -> None:
        self.program = program
        self.impure_builtins = impure_builtins
        self.impure_modules = impure_modules
        self.mutator_methods = mutator_methods

    # ------------------------------------------------------------------
    # Direct effects
    # ------------------------------------------------------------------

    def direct_effects(self, info: FunctionInfo) -> list[str]:
        """Statically visible side effects of one function body."""
        effects: list[str] = []
        params = set(info.param_names())
        declared_global = self._global_names(info)
        locals_bound = self._local_bindings(info)
        module_globals = set(
            self.program.symbols[info.module.name].globals
        ) | set(self.program.symbols[info.module.name].functions)
        thread_local = {
            name
            for name, var in self.program.symbols[
                info.module.name
            ].globals.items()
            if var.thread_local
        }

        def classify_base(name: str) -> str | None:
            """Which effect bucket a write through ``name`` lands in."""
            if name in params:
                return f"mutates parameter {name!r}"
            if name in declared_global:
                return f"mutates module global {name!r}"
            if name in locals_bound:
                return None
            if name in thread_local:
                return None  # thread-confined by construction
            if name in module_globals:
                return f"mutates module global {name!r}"
            return None

        for node in self._body(info):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        if target.id in declared_global:
                            effects.append(
                                f"rebinds module global {target.id!r}"
                            )
                    elif isinstance(target, (ast.Attribute, ast.Subscript)):
                        base = _base_name(target)
                        if base is not None:
                            effect = classify_base(base)
                            if effect is not None:
                                effects.append(effect)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        base = _base_name(target)
                        if base is not None:
                            effect = classify_base(base)
                            if effect is not None:
                                effects.append(effect)
                    elif (
                        isinstance(target, ast.Name)
                        and target.id in declared_global
                    ):
                        effects.append(
                            f"rebinds module global {target.id!r}"
                        )
            elif isinstance(node, ast.Call):
                effects.extend(
                    self._call_effects(info, node, classify_base)
                )
        # Stable order, preserve first occurrence.
        seen: set[str] = set()
        unique: list[str] = []
        for effect in effects:
            if effect not in seen:
                seen.add(effect)
                unique.append(effect)
        return unique

    def _call_effects(
        self,
        info: FunctionInfo,
        node: ast.Call,
        classify_base: Callable[[str], str | None],
    ) -> Iterator[str]:
        path = dotted(node.func)
        if path is None:
            return
        # Mutating method call on a parameter or module global.
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            if method in self.mutator_methods:
                base = _base_name(node.func)
                if base is not None:
                    effect = classify_base(base)
                    if effect is not None:
                        yield f"{effect} via .{method}()"
        resolved = self.program.resolve_dotted(info.module.name, path)
        target = resolved if resolved is not None else path
        top = target.split(".")[0]
        leaf = target.split(".")[-1]
        if target not in self.program.functions:
            if "." not in path and leaf in self.impure_builtins:
                yield f"calls impure builtin {leaf!r}"
            elif top in self.impure_modules:
                yield f"calls into impure module {target!r}"

    # ------------------------------------------------------------------
    # Fixpoint
    # ------------------------------------------------------------------

    def analyze(self) -> PurityReport:
        program = self.program
        direct: dict[str, list[str]] = {
            qualname: self.direct_effects(info)
            for qualname, info in program.functions.items()
        }
        edges: dict[str, set[str]] = {}
        unresolved: dict[str, int] = {}
        for qualname, info in program.functions.items():
            callees: set[str] = set(info.nested)
            n_unresolved = 0
            for site in info.calls:
                if site.callee is None:
                    n_unresolved += 1
                elif site.callee in program.functions:
                    callees.add(site.callee)
            edges[qualname] = callees
            unresolved[qualname] = n_unresolved

        impure: set[str] = {q for q, effects in direct.items() if effects}
        changed = True
        while changed:
            changed = False
            for qualname, callees in edges.items():
                if qualname in impure:
                    continue
                if callees & impure:
                    impure.add(qualname)
                    changed = True

        report = PurityReport()
        for qualname, info in program.functions.items():
            effects = tuple(direct[qualname])
            reasons = list(effects)
            for callee in sorted(edges[qualname] & impure):
                reasons.append(f"calls impure {callee!r}")
            report.functions[qualname] = FunctionPurity(
                qualname=qualname,
                module=info.module.name,
                line=info.line,
                classification="impure" if qualname in impure else "pure",
                reasons=tuple(reasons),
                direct_effects=effects,
                callees=tuple(sorted(edges[qualname])),
                unresolved_calls=unresolved[qualname],
                public=_is_public(qualname),
            )
        return report

    # ------------------------------------------------------------------
    # Body helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _body(info: FunctionInfo) -> Iterator[ast.AST]:
        stack: list[ast.AST] = list(info.node.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _global_names(self, info: FunctionInfo) -> set[str]:
        names: set[str] = set()
        for node in self._body(info):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                names.update(node.names)
        return names

    def _local_bindings(self, info: FunctionInfo) -> set[str]:
        declared_global = self._global_names(info)
        bound: set[str] = set()
        for node in self._body(info):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                targets = [node.target]
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                targets = [
                    item.optional_vars
                    for item in node.items
                    if item.optional_vars is not None
                ]
            elif isinstance(node, ast.comprehension):
                targets = [node.target]
            for target in targets:
                bound.update(_binding_names(target))
        return bound - declared_global


def analyze_purity(program: Program) -> PurityReport:
    """The program's purity registry, cached on the program object."""
    cached = program.cache.get("purity")
    if isinstance(cached, PurityReport):
        return cached
    report = PurityAnalyzer(program).analyze()
    program.cache["purity"] = report
    return report


def report_dict(
    program: Program, report: PurityReport | None = None
) -> dict[str, object]:
    """The ``repro-lint-purity/1`` JSON document for ``--report``."""
    if report is None:
        report = analyze_purity(program)
    functions: dict[str, dict[str, object]] = {}
    for qualname in sorted(report.functions):
        entry = report.functions[qualname]
        functions[qualname] = {
            "module": entry.module,
            "line": entry.line,
            "classification": entry.classification,
            "reasons": list(entry.reasons),
            "direct_effects": list(entry.direct_effects),
            "callees": list(entry.callees),
            "unresolved_calls": entry.unresolved_calls,
            "public": entry.public,
        }
    n_pure = sum(1 for e in report.functions.values() if e.is_pure)
    return {
        "schema": "repro-lint-purity/1",
        "modules": sorted(program.modules),
        "functions": functions,
        "summary": {
            "functions": len(report.functions),
            "pure": n_pure,
            "impure": len(report.functions) - n_pure,
        },
    }


def _base_name(node: ast.expr) -> str | None:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _binding_names(target: ast.expr) -> Iterator[str]:
    """Names *bound* by an assignment target.

    ``x = ...`` and ``x, *rest = ...`` bind names; ``x[0] = ...`` and
    ``x.attr = ...`` mutate an existing object and bind nothing — their
    inner names must not shadow the mutation analysis.
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, ast.Starred):
        yield from _binding_names(target.value)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _binding_names(element)
