"""The whole-program concurrency and purity rules, GT007-GT012.

These rules validate the assumptions :mod:`repro.parallel` already makes
(fork-COW payload sharing, module-level worker functions) and the ones
the roadmap's concurrent serving layer will make (thread-safe singleton
swaps, no unguarded shared mutable state, a pure-function registry sound
enough to back a result cache).  They are :class:`~repro.lint.engine.ProgramRule`
subclasses: the engine builds one cross-module
:class:`~repro.lint.callgraph.Program` per run and binds it before
dispatch, so every rule can follow imports, the call graph, and the
purity registry across module boundaries.

See ``docs/static_analysis.md`` for the rationale and configuration
knobs of each rule.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator
from fnmatch import fnmatchcase

from .callgraph import FunctionInfo, Program, dotted
from .engine import Module, ProgramRule, Violation, register
from .purity import analyze_purity
from .purity import _binding_names as _purity_binding_names

__all__ = [
    "WorkerForkSafety",
    "NoSharedPayloadWrite",
    "NoMutableModuleGlobals",
    "SingletonSwapDiscipline",
    "ImpureCallInPureContext",
    "UnguardedSharedState",
]


def _base_name(node: ast.expr) -> str | None:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _matches_any(name: str, patterns: tuple[str, ...]) -> bool:
    return any(fnmatchcase(name, pattern) for pattern in patterns)


# ---------------------------------------------------------------------------
# Submission discovery (shared by GT007 and GT008)
# ---------------------------------------------------------------------------


class Submission:
    """One ``executor.map(fn, ...)``-style call site, resolved."""

    __slots__ = ("caller", "call", "fn_expr", "workers", "problems")

    def __init__(
        self,
        caller: FunctionInfo,
        call: ast.Call,
        fn_expr: ast.expr,
    ) -> None:
        self.caller = caller
        self.call = call
        self.fn_expr = fn_expr
        #: Resolved worker-function qualnames (may be several through
        #: parameter indirection).
        self.workers: list[str] = []
        #: (node, message) pairs for unresolvable/unsafe submissions.
        self.problems: list[tuple[ast.AST, str]] = []


def _looks_like_executor(
    caller: FunctionInfo,
    receiver: ast.expr,
    receiver_hints: tuple[str, ...],
    factory_calls: tuple[str, ...],
) -> bool:
    """Whether the ``.map``/``.submit`` receiver is plausibly an executor.

    True for a direct factory call (``get_executor(...).map``), a name
    whose identifier matches a receiver hint (``executor``, ``pool``),
    or a local assigned from a factory call earlier in the function.
    """
    if isinstance(receiver, ast.Call):
        name = dotted(receiver.func)
        return name is not None and name.split(".")[-1] in factory_calls
    name = _base_name(receiver)
    if name is None:
        return False
    lowered = name.lower()
    if any(hint in lowered for hint in receiver_hints):
        return True
    for node in ast.walk(caller.node):
        if isinstance(node, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == name
                for t in node.targets
            ) and isinstance(node.value, ast.Call):
                factory = dotted(node.value.func)
                if (
                    factory is not None
                    and factory.split(".")[-1] in factory_calls
                ):
                    return True
    return False


def _trace_submitted(
    program: Program,
    caller: FunctionInfo,
    expr: ast.expr,
    submission: Submission,
    depth: int,
) -> None:
    """Resolve the function expression handed to an executor.

    Accepts module-level functions (directly, through an import, or
    through bounded caller-argument indirection when the expression is a
    parameter of the enclosing function); everything else — lambdas,
    nested functions, bound methods, untraceable names — is recorded as
    a problem at the offending node.
    """
    if isinstance(expr, ast.Lambda):
        submission.problems.append(
            (expr, "lambda submitted to an executor; workers must be "
                   "module-level functions (pickled by reference)")
        )
        return
    if isinstance(expr, ast.Attribute):
        base = _base_name(expr)
        if base == "self":
            submission.problems.append(
                (expr, "bound method submitted to an executor; workers "
                       "must be module-level functions")
            )
            return
        resolved = program.resolve(caller.module.name, expr)
        if resolved is None:
            submission.problems.append(
                (expr, f"cannot statically resolve worker function "
                       f"{dotted(expr) or '<dynamic>'!r} submitted to an "
                       f"executor")
            )
            return
        _accept_resolved(program, resolved, expr, submission)
        return
    if not isinstance(expr, ast.Name):
        submission.problems.append(
            (expr, "dynamic expression submitted to an executor; workers "
                   "must be module-level functions")
        )
        return
    name = expr.id
    nested = f"{caller.qualname}.<locals>.{name}"
    if nested in program.functions:
        submission.problems.append(
            (expr, f"nested function {name!r} submitted to an executor; "
                   f"closures cannot be pickled by reference — move it to "
                   f"module level")
        )
        return
    params = caller.param_names()
    if name in params:
        if depth <= 0:
            submission.problems.append(
                (expr, f"worker function parameter {name!r} could not be "
                       f"resolved (indirection too deep)")
            )
            return
        callers = program.callers_of(caller.qualname)
        if not callers:
            submission.problems.append(
                (expr, f"worker function arrives via parameter {name!r} "
                       f"but no caller of {caller.name!r} was found to "
                       f"resolve it")
            )
            return
        position = params.index(name)
        for upstream, site in callers:
            arg = _argument_at(site.node, position, name)
            if arg is None:
                continue
            _trace_submitted(program, upstream, arg, submission, depth - 1)
        return
    # A local alias: follow a simple `fn = some_function` assignment.
    local = _local_function_alias(caller, name)
    if local is not None:
        _trace_submitted(program, caller, local, submission, depth)
        return
    resolved = program.resolve(caller.module.name, expr)
    if resolved is None:
        submission.problems.append(
            (expr, f"cannot statically resolve worker function {name!r} "
                   f"submitted to an executor")
        )
        return
    _accept_resolved(program, resolved, expr, submission)


def _accept_resolved(
    program: Program,
    resolved: str,
    expr: ast.expr,
    submission: Submission,
) -> None:
    info = program.functions.get(resolved)
    if info is None:
        # External (not-linted) target: module-level by construction.
        submission.workers.append(resolved)
        return
    if info.is_nested:
        submission.problems.append(
            (expr, f"nested function {info.name!r} submitted to an "
                   f"executor; move it to module level")
        )
        return
    if info.is_method:
        submission.problems.append(
            (expr, f"method {info.qualname!r} submitted to an executor; "
                   f"workers must be module-level functions")
        )
        return
    submission.workers.append(resolved)


def _argument_at(
    call: ast.Call, position: int, name: str
) -> ast.expr | None:
    if position < len(call.args):
        return call.args[position]
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _local_function_alias(
    caller: FunctionInfo, name: str
) -> ast.expr | None:
    for node in ast.walk(caller.node):
        if isinstance(node, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == name
                for t in node.targets
            ) and isinstance(node.value, (ast.Name, ast.Attribute)):
                return node.value
    return None


def find_submissions(
    program: Program,
    submit_attrs: tuple[str, ...],
    receiver_hints: tuple[str, ...],
    factory_calls: tuple[str, ...],
    max_indirection: int,
) -> list[Submission]:
    """Every executor-submission call site in the program, resolved.

    Cached on the program (both GT007 and GT008 consume this view).
    """
    key = f"submissions:{(submit_attrs, receiver_hints, factory_calls)!r}"
    cached = program.cache.get(key)
    if isinstance(cached, list):
        return cached
    submissions: list[Submission] = []
    for info in program.functions.values():
        for site in info.calls:
            call = site.node
            if not isinstance(call.func, ast.Attribute):
                continue
            if call.func.attr not in submit_attrs:
                continue
            if not call.args:
                continue
            if not _looks_like_executor(
                info, call.func.value, receiver_hints, factory_calls
            ):
                continue
            submission = Submission(info, call, call.args[0])
            _trace_submitted(
                program, info, call.args[0], submission, max_indirection
            )
            submissions.append(submission)
    program.cache[key] = submissions
    return submissions


def _rule_submissions(rule: ProgramRule) -> list[Submission]:
    assert rule.program is not None
    return find_submissions(
        rule.program,
        tuple(rule.settings.option("submit_attrs", ("map", "submit"))),
        tuple(rule.settings.option("receiver_hints", ("executor", "pool"))),
        tuple(
            rule.settings.option(
                "factory_calls",
                ("get_executor", "ParallelExecutor", "InlineExecutor"),
            )
        ),
        int(rule.settings.option("max_indirection", 3)),
    )


# ---------------------------------------------------------------------------
# GT007 — worker-function fork-safety
# ---------------------------------------------------------------------------


@register
class WorkerForkSafety(ProgramRule):
    """GT007: functions submitted to an executor must be fork-safe.

    :class:`~repro.parallel.ParallelExecutor` pickles worker functions
    by reference (module + qualname) for the spawn fallback and relies
    on fork-COW sharing elsewhere; a lambda, nested function, or bound
    method either fails to pickle or silently drags captured state
    across the process boundary.  The rule resolves the first argument
    of every ``executor.map(...)``-shaped call through the call graph —
    including bounded indirection through function parameters — and
    flags any submission that is not a module-level function.
    """

    id = "GT007"
    summary = "executor-submitted functions must be module-level and closure-free"

    def check(self, module: Module) -> Iterator[Violation]:
        for submission in _rule_submissions(self):
            if submission.caller.module.name != module.name:
                continue
            for node, message in submission.problems:
                yield self.violation(module, node, message)


# ---------------------------------------------------------------------------
# GT008 — workers must not mutate the shared payload
# ---------------------------------------------------------------------------


@register
class NoSharedPayloadWrite(ProgramRule):
    """GT008: worker functions must not write to the fork-COW payload.

    The executor publishes the payload once and forks; pages are shared
    copy-on-write, and the roadmap's thread-backed executors will share
    them *for real*.  A worker that mutates the payload (or anything
    reached from it) breaks bit-exact parity with the serial engine the
    moment sharing stops being copy-on-write.  Worker functions are the
    resolved submissions of GT007; the payload is the worker's first
    parameter, and aliases created by unpacking or attribute/subscript
    reads are tracked to a fixpoint.
    """

    id = "GT008"
    summary = "workers must not mutate the shared payload"

    def check(self, module: Module) -> Iterator[Violation]:
        assert self.program is not None
        mutators = set(
            self.settings.option(
                "mutating_methods",
                (
                    "append", "add", "clear", "extend", "insert", "pop",
                    "popitem", "remove", "discard", "update", "setdefault",
                    "sort", "reverse", "fill", "put", "resize", "itemset",
                ),
            )
        )
        seen: set[str] = set()
        for submission in _rule_submissions(self):
            for qualname in submission.workers:
                if qualname in seen:
                    continue
                seen.add(qualname)
                info = self.program.functions.get(qualname)
                if info is None or info.module.name != module.name:
                    continue
                yield from self._check_worker(module, info, mutators)

    def _check_worker(
        self, module: Module, info: FunctionInfo, mutators: set[str]
    ) -> Iterator[Violation]:
        params = info.param_names()
        if not params:
            return
        payload = params[0]
        aliases = self._payload_aliases(info, payload)
        for node in ast.walk(info.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        base = _base_name(target)
                        if base in aliases:
                            yield self.violation(
                                module,
                                node,
                                f"worker {info.name!r} writes to the shared "
                                f"payload (via {base!r}); workers must "
                                f"treat the fork-COW payload as immutable",
                            )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        base = _base_name(target)
                        if base in aliases:
                            yield self.violation(
                                module,
                                node,
                                f"worker {info.name!r} deletes from the "
                                f"shared payload (via {base!r})",
                            )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in mutators:
                    base = _base_name(node.func.value)
                    if base in aliases:
                        yield self.violation(
                            module,
                            node,
                            f"worker {info.name!r} calls mutating "
                            f".{node.func.attr}() on the shared payload "
                            f"(via {base!r})",
                        )

    @staticmethod
    def _payload_aliases(info: FunctionInfo, payload: str) -> set[str]:
        """Names reachable from the payload parameter by direct aliasing."""
        aliases = {payload}
        changed = True
        while changed:
            changed = False
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Assign):
                    continue
                value = node.value
                source: str | None = None
                if isinstance(value, (ast.Name, ast.Attribute, ast.Subscript)):
                    source = _base_name(value)
                elif isinstance(value, ast.Starred):
                    source = _base_name(value.value)
                if source not in aliases:
                    continue
                for target in node.targets:
                    for leaf in ast.walk(target):
                        if (
                            isinstance(leaf, ast.Name)
                            and leaf.id not in aliases
                        ):
                            aliases.add(leaf.id)
                            changed = True
        return aliases


# ---------------------------------------------------------------------------
# GT009 — no mutable module globals written at runtime
# ---------------------------------------------------------------------------


@register
class NoMutableModuleGlobals(ProgramRule):
    """GT009: no runtime writes to module-level state.

    Kairos-style single-machine performance comes from shared immutable
    data plus worker pools; one module global mutated at runtime breaks
    that silently (each forked worker sees a private copy, threads race).
    The rule flags, inside any function body: ``global X`` rebinding,
    and attribute/subscript writes or mutating method calls on
    module-level names.  Sanctioned registries (import-time decorator
    registries, GT010-governed singleton holders) are configured as
    ``sanctioned`` fnmatch patterns over ``module.name``; module globals
    bound to ``threading.local()`` are exempt by construction.
    """

    id = "GT009"
    summary = "no runtime writes to module-level mutable state"

    def check(self, module: Module) -> Iterator[Violation]:
        assert self.program is not None
        sanctioned = tuple(self.settings.option("sanctioned", ()))
        mutators = set(
            self.settings.option(
                "mutating_methods",
                (
                    "append", "add", "clear", "extend", "insert", "pop",
                    "popitem", "remove", "discard", "update", "setdefault",
                    "sort", "reverse",
                ),
            )
        )
        symbols = self.program.symbols.get(module.name)
        if symbols is None:
            return
        thread_local = {
            name for name, var in symbols.globals.items() if var.thread_local
        }
        module_names = set(symbols.globals)

        def exempt(name: str) -> bool:
            return (
                name in thread_local
                or _matches_any(f"{module.name}.{name}", sanctioned)
            )

        for info in self.program.functions_of(module):
            declared = self._declared_globals(info)
            locals_bound = self._plain_locals(info) - declared
            params = set(info.param_names())
            for node in self._own_body(info):
                yield from self._check_node(
                    module, info, node, declared, locals_bound, params,
                    module_names, mutators, exempt,
                )

    def _check_node(
        self,
        module: Module,
        info: FunctionInfo,
        node: ast.AST,
        declared: set[str],
        locals_bound: set[str],
        params: set[str],
        module_names: set[str],
        mutators: set[str],
        exempt: Callable[[str], bool],
    ) -> Iterator[Violation]:
        def is_global_write(name: str | None) -> bool:
            if name is None or name in params or name in locals_bound:
                return False
            if name not in declared and name not in module_names:
                return False
            return not exempt(name)

        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    if target.id in declared and not exempt(target.id):
                        yield self.violation(
                            module,
                            node,
                            f"{info.name!r} rebinds module global "
                            f"{target.id!r} at runtime; module state must "
                            f"be immutable or a sanctioned registry",
                        )
                elif isinstance(target, (ast.Attribute, ast.Subscript)):
                    base = _base_name(target)
                    if is_global_write(base):
                        yield self.violation(
                            module,
                            node,
                            f"{info.name!r} mutates module global "
                            f"{base!r} at runtime; module state must be "
                            f"immutable or a sanctioned registry",
                        )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                base: str | None = None
                if isinstance(target, ast.Name):
                    base = target.id if target.id in declared else None
                elif isinstance(target, (ast.Attribute, ast.Subscript)):
                    base = _base_name(target)
                if is_global_write(base):
                    yield self.violation(
                        module,
                        node,
                        f"{info.name!r} deletes from module global {base!r}",
                    )
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in mutators:
                base = _base_name(node.func.value)
                if is_global_write(base):
                    yield self.violation(
                        module,
                        node,
                        f"{info.name!r} calls mutating .{node.func.attr}() "
                        f"on module global {base!r} at runtime",
                    )

    @staticmethod
    def _own_body(info: FunctionInfo) -> Iterator[ast.AST]:
        stack: list[ast.AST] = list(info.node.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))

    @classmethod
    def _declared_globals(cls, info: FunctionInfo) -> set[str]:
        names: set[str] = set()
        for node in cls._own_body(info):
            if isinstance(node, ast.Global):
                names.update(node.names)
        return names

    @classmethod
    def _plain_locals(cls, info: FunctionInfo) -> set[str]:
        bound: set[str] = set()
        for node in cls._own_body(info):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                targets = [node.target]
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                targets = [
                    item.optional_vars
                    for item in node.items
                    if item.optional_vars is not None
                ]
            for target in targets:
                bound.update(_purity_binding_names(target))
        return bound


# ---------------------------------------------------------------------------
# GT010 — singleton swap discipline
# ---------------------------------------------------------------------------


@register
class SingletonSwapDiscipline(ProgramRule):
    """GT010: swappable singletons go through a lock-guarded setter.

    The :mod:`repro.obs` tracer/metrics singletons are read on every hot
    path and swapped by tests, workers, and (soon) concurrent server
    sessions.  The rule restricts ``global`` rebinding of configured
    singleton holders to their sanctioned setter functions and requires
    the swap itself to happen while holding a lock (a ``with`` block
    whose context expression names a lock).
    """

    id = "GT010"
    summary = "singleton swaps only in sanctioned, lock-guarded setters"

    def check(self, module: Module) -> Iterator[Violation]:
        assert self.program is not None
        singletons = tuple(self.settings.option("singletons", ()))
        setters = tuple(self.settings.option("setters", ()))
        for info in self.program.functions_of(module):
            declared = NoMutableModuleGlobals._declared_globals(info)
            guarded = {
                name
                for name in declared
                if _matches_any(f"{module.name}.{name}", singletons)
            }
            if not guarded:
                continue
            for node, name in self._singleton_writes(info, guarded):
                if not _matches_any(info.qualname, setters):
                    yield self.violation(
                        module,
                        node,
                        f"{info.name!r} swaps singleton {name!r} outside "
                        f"a sanctioned setter; route the swap through "
                        f"{', '.join(setters) or 'a guarded setter'}",
                    )
                elif not self._under_lock(info.node, node):
                    yield self.violation(
                        module,
                        node,
                        f"setter {info.name!r} swaps singleton {name!r} "
                        f"without holding a lock; wrap the swap in "
                        f"`with <lock>:`",
                    )

    @staticmethod
    def _singleton_writes(
        info: FunctionInfo, guarded: set[str]
    ) -> list[tuple[ast.stmt, str]]:
        writes: list[tuple[ast.stmt, str]] = []
        for node in ast.walk(info.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in guarded:
                        writes.append((node, target.id))
        return writes

    @staticmethod
    def _under_lock(func: ast.AST, stmt: ast.stmt) -> bool:
        """Whether ``stmt`` sits inside a ``with <...lock...>:`` block."""

        def contains(node: ast.AST) -> bool:
            return any(child is stmt for child in ast.walk(node))

        for node in ast.walk(func):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if not contains(node):
                continue
            for item in node.items:
                name = dotted(item.context_expr) or (
                    dotted(item.context_expr.func)
                    if isinstance(item.context_expr, ast.Call)
                    else None
                )
                if name is not None and "lock" in name.lower():
                    return True
        return False


# ---------------------------------------------------------------------------
# GT011 — no impure calls from pure operator contexts
# ---------------------------------------------------------------------------


@register
class ImpureCallInPureContext(ProgramRule):
    """GT011: operator/aggregation code paths call only pure functions.

    The paper's operators are functions of their inputs; ISSUE-3's result
    cache will memoize them on that basis.  The rule runs the transitive
    purity inference (:mod:`repro.lint.purity`) and flags calls, from
    functions in the configured pure-context modules, to functions
    *inferred impure* — excepting allowlisted instrumentation
    (observability counters/spans, the parallel fan-out machinery),
    whose effects are sanctioned and parity-tested.
    """

    id = "GT011"
    summary = "no impure calls from pure operator/aggregation contexts"

    def check(self, module: Module) -> Iterator[Violation]:
        assert self.program is not None
        allowed = tuple(self.settings.option("allowed_impure", ()))
        report = analyze_purity(self.program)
        for info in self.program.functions_of(module):
            for site in info.calls:
                callee = site.callee
                if callee is None:
                    continue
                if _matches_any(callee, allowed):
                    continue
                entry = report.functions.get(callee)
                if entry is None or entry.is_pure:
                    continue
                reason = entry.reasons[0] if entry.reasons else "impure"
                yield self.violation(
                    module,
                    site.node,
                    f"{info.name!r} calls impure {callee!r} ({reason}) "
                    f"from a pure operator context",
                )


# ---------------------------------------------------------------------------
# GT012 — unguarded writes to shared singletons
# ---------------------------------------------------------------------------


@register
class UnguardedSharedState(ProgramRule):
    """GT012: no attribute writes on objects shared across workers/threads.

    Objects obtained from the configured shared-state accessors
    (``get_tracer()``, ``get_metrics()``) are process-wide: every thread
    and instrumented call site sees the same instance.  Writing an
    attribute on one from library code races with every reader.  The
    rule tracks accessor results (directly and through local aliases)
    and flags attribute assignments on them outside the accessor's home
    module, unless the write happens under a lock.
    """

    id = "GT012"
    summary = "no unguarded attribute writes on shared singletons"

    def check(self, module: Module) -> Iterator[Violation]:
        assert self.program is not None
        accessors = set(self.settings.option("accessors", ()))
        for info in self.program.functions_of(module):
            aliases = self._accessor_aliases(info, accessors)
            for node in ast.walk(info.node):
                if not isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if not isinstance(target, ast.Attribute):
                        continue
                    shared = self._shared_receiver(target, aliases, accessors)
                    if shared is None:
                        continue
                    if SingletonSwapDiscipline._under_lock(info.node, node):
                        continue
                    yield self.violation(
                        module,
                        node,
                        f"{info.name!r} writes .{target.attr} on the shared "
                        f"{shared} object without a lock; shared singletons "
                        f"are read concurrently — use the guarded API",
                    )

    @staticmethod
    def _accessor_aliases(
        info: FunctionInfo, accessors: set[str]
    ) -> set[str]:
        aliases: set[str] = set()
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            name = dotted(node.value.func)
            if name is None or name.split(".")[-1] not in accessors:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    aliases.add(target.id)
        return aliases

    @staticmethod
    def _shared_receiver(
        target: ast.Attribute, aliases: set[str], accessors: set[str]
    ) -> str | None:
        value = target.value
        if isinstance(value, ast.Name) and value.id in aliases:
            return f"{value.id!r}"
        if isinstance(value, ast.Call):
            name = dotted(value.func)
            if name is not None and name.split(".")[-1] in accessors:
                return f"{name}()"
        return None
