"""Configuration for the GraphTempo linter.

The linter is configured from the ``[tool.repro-lint]`` table of a
``pyproject.toml``.  Built-in defaults (below) encode the repository's
own conventions, so ``python -m repro.lint`` works with no configuration
at all; a project table overrides the defaults key by key.

Schema::

    [tool.repro-lint]
    select  = ["GT001", ...]        # rules to run
    exclude = ["src/generated/*"]   # path patterns (fnmatch, posix)

    [tool.repro-lint.GT003]
    modules = ["repro.*"]           # dotted-module include patterns
    exempt  = ["repro.cli"]         # dotted-module exclude patterns
    forbidden = ["ValueError", ...] # rule-specific option

Dotted-module patterns use ``fnmatch`` syntax; ``pkg.*`` also matches
``pkg`` itself.  An empty ``modules`` list means "every module".
"""

from __future__ import annotations

import tomllib
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import ConfigurationError

__all__ = ["DEFAULTS", "LintConfig", "RuleSettings", "load_config"]


#: The repository's own conventions, used when pyproject.toml has no
#: ``[tool.repro-lint]`` table (or only a partial one).
DEFAULTS: dict[str, Any] = {
    "select": [
        "GT001", "GT002", "GT003", "GT004", "GT005", "GT006",
        "GT007", "GT008", "GT009", "GT010", "GT011", "GT012",
    ],
    "exclude": [],
    "GT001": {
        "modules": [
            "repro.core.operators",
            "repro.core.aggregation",
            "repro.core.evolution",
            "repro.frames.*",
        ],
        "exempt": [],
        "frame_types": [
            "LabeledFrame",
            "Table",
            "TemporalGraph",
            "AggregateGraph",
            "EvolutionGraph",
        ],
        "mutating_methods": [
            "append",
            "clear",
            "extend",
            "fill",
            "insert",
            "itemset",
            "partition",
            "pop",
            "popitem",
            "put",
            "remove",
            "resize",
            "setdefault",
            "sort",
            "update",
        ],
    },
    "GT002": {
        "modules": [
            "repro.frames.labeled_frame",
            "repro.frames.table",
            "repro.core.fast",
            "repro.core.operators",
            "repro.core.aggregation",
        ],
        "exempt": [],
        "row_iteration_attrs": ["iter_rows", "iterrows", "itertuples"],
        "size_attrs": ["n_rows"],
        "len_attrs": ["row_labels"],
    },
    "GT003": {
        "modules": ["repro.*"],
        "exempt": ["repro.cli", "repro.__main__"],
        "forbidden": [
            "ArithmeticError",
            "Exception",
            "IndexError",
            "KeyError",
            "LookupError",
            "RuntimeError",
            "TypeError",
            "ValueError",
        ],
    },
    "GT004": {
        "modules": ["repro.frames.*", "repro.core.*"],
        "exempt": [],
        "allow": ["numpy"],
        "first_party": ["repro"],
    },
    "GT005": {
        "modules": ["repro.*"],
        "exempt": ["repro.__main__", "repro.lint.__main__"],
    },
    "GT006": {
        "modules": ["repro.*"],
        "exempt": ["repro.cli", "repro.__main__", "repro.lint.cli"],
    },
    "GT007": {
        "modules": ["repro.*"],
        "exempt": [],
        "submit_attrs": ["map", "submit"],
        "receiver_hints": ["executor", "pool"],
        "factory_calls": ["get_executor", "ParallelExecutor", "InlineExecutor"],
        "max_indirection": 3,
    },
    "GT008": {
        "modules": ["repro.*"],
        "exempt": [],
        "submit_attrs": ["map", "submit"],
        "receiver_hints": ["executor", "pool"],
        "factory_calls": ["get_executor", "ParallelExecutor", "InlineExecutor"],
        "max_indirection": 3,
    },
    "GT009": {
        "modules": ["repro.*"],
        "exempt": [],
        # Import-time decorator registries and the GT010-governed
        # singleton holders; fnmatch over "module.name".
        "sanctioned": [
            "*._REGISTRY",
            "repro.obs.trace._tracer",
            "repro.obs.metrics._registry",
        ],
    },
    "GT010": {
        "modules": ["repro.*"],
        "exempt": [],
        "singletons": [
            "repro.obs.trace._tracer",
            "repro.obs.metrics._registry",
        ],
        "setters": [
            "repro.obs.trace.set_tracer",
            "repro.obs.metrics.set_metrics",
        ],
    },
    "GT011": {
        "modules": [
            "repro.core.operators",
            "repro.core.aggregation",
            "repro.core.evolution",
        ],
        "exempt": [],
        # Sanctioned instrumentation and fan-out machinery: effects are
        # parity-tested and invisible to operator results.
        "allowed_impure": ["repro.obs.*", "repro.parallel.*"],
    },
    "GT012": {
        "modules": ["repro.*"],
        "exempt": ["repro.obs.*"],
        "accessors": ["get_tracer", "get_metrics"],
    },
}

_RULE_ID_KEYS = {key for key in DEFAULTS if key.startswith("GT")}
_TOP_LEVEL_KEYS = {"select", "exclude"}


@dataclass(frozen=True)
class RuleSettings:
    """Effective settings for one rule: module filters plus free options."""

    modules: tuple[str, ...] = ()
    exempt: tuple[str, ...] = ()
    options: Mapping[str, Any] = field(default_factory=dict)

    def option(self, key: str, default: Any = None) -> Any:
        return self.options.get(key, default)


@dataclass(frozen=True)
class LintConfig:
    """The full lint configuration: selection, path excludes, per-rule settings."""

    select: tuple[str, ...]
    exclude: tuple[str, ...]
    rules: Mapping[str, Mapping[str, Any]]

    def rule_settings(self, rule_id: str) -> RuleSettings:
        table = dict(self.rules.get(rule_id, {}))
        modules = tuple(table.pop("modules", ()))
        exempt = tuple(table.pop("exempt", ()))
        return RuleSettings(modules=modules, exempt=exempt, options=table)


def _as_str_list(value: Any, context: str) -> list[str]:
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        raise ConfigurationError(f"{context} must be a list of strings")
    return list(value)


def _merged(overrides: Mapping[str, Any]) -> dict[str, Any]:
    merged: dict[str, Any] = {
        "select": list(DEFAULTS["select"]),
        "exclude": list(DEFAULTS["exclude"]),
    }
    for rule_id in _RULE_ID_KEYS:
        merged[rule_id] = dict(DEFAULTS[rule_id])
    for key, value in overrides.items():
        if key in _TOP_LEVEL_KEYS:
            merged[key] = _as_str_list(value, f"[tool.repro-lint] {key}")
        elif key.upper().startswith("GT"):
            if not isinstance(value, Mapping):
                raise ConfigurationError(
                    f"[tool.repro-lint.{key}] must be a table"
                )
            table = dict(merged.get(key.upper(), {}))
            table.update(value)
            merged[key.upper()] = table
        else:
            raise ConfigurationError(
                f"unknown [tool.repro-lint] key: {key!r}"
            )
    return merged


def config_from_mapping(overrides: Mapping[str, Any]) -> LintConfig:
    """Build a :class:`LintConfig` from a ``[tool.repro-lint]``-shaped mapping."""
    merged = _merged(overrides)
    select = tuple(merged["select"])
    exclude = tuple(merged["exclude"])
    rules = {
        key: value
        for key, value in merged.items()
        if key not in _TOP_LEVEL_KEYS
    }
    return LintConfig(select=select, exclude=exclude, rules=rules)


def load_config(pyproject: Path | str | None = None) -> LintConfig:
    """Load the lint configuration.

    ``pyproject`` names a ``pyproject.toml``; when ``None``, the current
    directory's ``pyproject.toml`` is used if present, else defaults.
    """
    path: Path | None
    if pyproject is not None:
        path = Path(pyproject)
        if not path.is_file():
            raise ConfigurationError(f"config file not found: {path}")
    else:
        candidate = Path("pyproject.toml")
        path = candidate if candidate.is_file() else None
    if path is None:
        return config_from_mapping({})
    try:
        with path.open("rb") as handle:
            data = tomllib.load(handle)
    except tomllib.TOMLDecodeError as exc:
        raise ConfigurationError(f"invalid TOML in {path}: {exc}") from exc
    section = data.get("tool", {}).get("repro-lint", {})
    if not isinstance(section, Mapping):
        raise ConfigurationError("[tool.repro-lint] must be a table")
    return config_from_mapping(section)


def selected_rules(config: LintConfig, only: Sequence[str] | None) -> LintConfig:
    """Narrow ``config.select`` to ``only`` (e.g. from ``--select``)."""
    if not only:
        return config
    return LintConfig(
        select=tuple(only), exclude=config.exclude, rules=config.rules
    )
