"""The GraphTempo-specific lint rules, GT001-GT006.

Each rule encodes an invariant the paper's algorithms assume but Python
does not enforce; see ``docs/static_analysis.md`` for the full rationale
of every rule and the configuration knobs it accepts.
"""

from __future__ import annotations

import ast
import sys
from collections.abc import Iterator, Sequence

from .engine import Module, Rule, Violation, register

__all__ = [
    "NoInputMutation",
    "Vectorization",
    "ErrorTaxonomy",
    "DependencyHygiene",
    "PublicApi",
    "NoPrint",
]


def _base_name(node: ast.expr) -> str | None:
    """The root ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _bound_names(target: ast.expr) -> set[str]:
    """Names *bound* by an assignment target (not mutated through)."""
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: set[str] = set()
        for element in target.elts:
            names |= _bound_names(element)
        return names
    if isinstance(target, ast.Starred):
        return _bound_names(target.value)
    return set()


def _annotation_idents(annotation: ast.expr | None) -> set[str]:
    """All identifiers appearing in an annotation, including inside
    string (forward-reference) annotations."""
    if annotation is None:
        return set()
    idents: set[str] = set()
    stack: list[ast.AST] = [annotation]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Name):
            idents.add(node.id)
        elif isinstance(node, ast.Attribute):
            idents.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                stack.append(ast.parse(node.value, mode="eval").body)
            except SyntaxError:
                continue
        stack.extend(ast.iter_child_nodes(node))
    return idents


@register
class NoInputMutation(Rule):
    """GT001: temporal operators and aggregation must not mutate inputs.

    Algorithms 1 and 2 are defined as *functions* of their input graphs:
    every operator builds a new graph.  This rule flags in-place writes
    (``frame.values[...] = x``, ``frame.attr = x``, augmented
    assignments, ``del``) and known mutating method calls on any
    parameter annotated with a frame-like type, inside the configured
    modules.
    """

    id = "GT001"
    summary = "no in-place mutation of frame-typed parameters"

    def check(self, module: Module) -> Iterator[Violation]:
        frame_types = set(
            self.settings.option("frame_types", ())
        )
        mutators = set(self.settings.option("mutating_methods", ()))
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            tracked = self._tracked_params(node, frame_types)
            if not tracked:
                continue
            yield from self._check_function(module, node, tracked, mutators)

    @staticmethod
    def _tracked_params(
        func: ast.FunctionDef | ast.AsyncFunctionDef, frame_types: set[str]
    ) -> set[str]:
        args = func.args
        tracked: set[str] = set()
        for arg in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *filter(None, [args.vararg, args.kwarg]),
        ]:
            if _annotation_idents(arg.annotation) & frame_types:
                tracked.add(arg.arg)
        return tracked

    def _check_function(
        self,
        module: Module,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        tracked: set[str],
        mutators: set[str],
    ) -> Iterator[Violation]:
        # A parameter rebound anywhere in the function becomes a plain
        # local; stop tracking it to avoid false positives.  Only plain
        # name (or tuple-unpacking) targets rebind — an attribute or
        # subscript target is a mutation, not a binding.
        rebound: set[str] = set()
        for node in ast.walk(func):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                targets = [node.target]
            for target in targets:
                rebound |= _bound_names(target) & tracked
        live = tracked - rebound
        if not live:
            return
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        name = _base_name(target)
                        if name in live:
                            yield self.violation(
                                module,
                                node,
                                f"in-place write to frame parameter {name!r}; "
                                "operators must build new frames "
                                "(Algorithms 1-2 treat inputs as immutable)",
                            )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        name = _base_name(target)
                        if name in live:
                            yield self.violation(
                                module,
                                node,
                                f"del on frame parameter {name!r}; inputs are immutable",
                            )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in mutators:
                    name = _base_name(node.func.value)
                    if name in live:
                        yield self.violation(
                            module,
                            node,
                            f"mutating call {name}.{node.func.attr}() on a frame "
                            "parameter; inputs are immutable",
                        )


@register
class Vectorization(Rule):
    """GT002: hot paths must stay vectorized numpy.

    Section 4's storage model exists so selection and aggregation run as
    whole-array numpy operations.  This rule flags Python-level row
    loops — ``for row in frame.iter_rows()``, ``for i in
    range(frame.n_rows)``, ``for x in range(len(frame.row_labels))`` —
    inside the configured hot modules, where a mask/select frame
    primitive should be used instead.
    """

    id = "GT002"
    summary = "no Python row loops in hot modules"

    def check(self, module: Module) -> Iterator[Violation]:
        row_attrs = set(self.settings.option("row_iteration_attrs", ()))
        size_attrs = set(self.settings.option("size_attrs", ()))
        len_attrs = set(self.settings.option("len_attrs", ()))
        for node in ast.walk(module.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters = [node.iter]
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters = [gen.iter for gen in node.generators]
            for candidate in iters:
                reason = self._row_loop_reason(
                    candidate, row_attrs, size_attrs, len_attrs
                )
                if reason:
                    yield self.violation(
                        module,
                        candidate,
                        f"python-level row loop ({reason}) in a hot module; "
                        "use a vectorized frame primitive (masks/select) instead",
                    )

    @staticmethod
    def _row_loop_reason(
        node: ast.expr,
        row_attrs: set[str],
        size_attrs: set[str],
        len_attrs: set[str],
    ) -> str | None:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in row_attrs
        ):
            return f".{node.func.attr}()"
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "range"
        ):
            for arg in node.args:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Attribute) and sub.attr in size_attrs:
                        return f"range over .{sub.attr}"
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id == "len"
                        and sub.args
                        and isinstance(sub.args[0], ast.Attribute)
                        and sub.args[0].attr in len_attrs
                    ):
                        return f"range over len(.{sub.args[0].attr})"
        return None


@register
class ErrorTaxonomy(Rule):
    """GT003: library code raises the repro error hierarchy.

    Every failure surface derives from ``repro.errors.GraphTempoError``
    so integrations can catch reproduction failures uniformly; bare
    builtin raises fragment that contract.
    """

    id = "GT003"
    summary = "raise repro.errors classes, not bare builtins"

    def check(self, module: Module) -> Iterator[Violation]:
        forbidden = set(self.settings.option("forbidden", ()))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name: str | None = None
            if isinstance(exc, ast.Name):
                name = exc.id
            elif isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            if name in forbidden:
                yield self.violation(
                    module,
                    node,
                    f"raise of bare {name}; use a repro.errors class "
                    "(e.g. ValidationError, UnknownLabelError) instead",
                )


@register
class DependencyHygiene(Rule):
    """GT004: the storage substrate and core depend only on numpy + stdlib.

    Section 4's claim is that the whole framework runs on labeled numpy
    arrays; optional integrations (networkx, plotting, ...) must stay in
    outer layers so the kernel stays importable everywhere.
    """

    id = "GT004"
    summary = "only numpy/stdlib/first-party imports in core modules"

    def check(self, module: Module) -> Iterator[Violation]:
        allow = set(self.settings.option("allow", ()))
        first_party = set(self.settings.option("first_party", ()))
        stdlib = set(sys.stdlib_module_names)
        for node in ast.walk(module.tree):
            tops: list[tuple[ast.AST, str]] = []
            if isinstance(node, ast.Import):
                tops = [(node, alias.name.split(".")[0]) for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module:
                    tops = [(node, node.module.split(".")[0])]
            for site, top in tops:
                if top in stdlib or top in allow or top in first_party:
                    continue
                yield self.violation(
                    module,
                    site,
                    f"third-party import {top!r} in a core module; only "
                    f"{sorted(allow)} and the stdlib are allowed here",
                )


@register
class PublicApi(Rule):
    """GT005: public modules declare ``__all__`` and every name resolves.

    An explicit ``__all__`` keeps the re-export surface (and
    ``no_implicit_reexport`` under strict mypy) intentional.
    """

    id = "GT005"
    summary = "public modules define a resolvable __all__"

    def check(self, module: Module) -> Iterator[Violation]:
        if any(
            part.startswith("_") and not part.startswith("__")
            for part in module.name.split(".")
        ):
            return
        all_node, names, literal = self._find_all(module.tree)
        if all_node is None:
            yield Violation(
                rule=self.id,
                path=module.relpath,
                line=1,
                col=1,
                message="public module defines no __all__",
            )
            return
        if not literal:
            return  # computed __all__: presence satisfied, cannot resolve
        bound, wildcard = self._top_level_bindings(module.tree)
        if wildcard:
            return
        for name in names:
            if name not in bound:
                yield self.violation(
                    module,
                    all_node,
                    f"__all__ name {name!r} is not defined in the module",
                )

    @staticmethod
    def _find_all(
        tree: ast.Module,
    ) -> tuple[ast.stmt | None, list[str], bool]:
        found: ast.stmt | None = None
        names: list[str] = []
        literal = True
        for node in tree.body:
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
            elif isinstance(node, ast.AugAssign):
                target, value = node.target, None
            if (
                isinstance(target, ast.Name)
                and target.id == "__all__"
            ):
                found = node
                if isinstance(value, (ast.List, ast.Tuple)) and all(
                    isinstance(el, ast.Constant) and isinstance(el.value, str)
                    for el in value.elts
                ):
                    names.extend(
                        el.value  # type: ignore[misc]
                        for el in value.elts
                        if isinstance(el, ast.Constant)
                    )
                else:
                    literal = False
        return found, names, literal

    @staticmethod
    def _top_level_bindings(tree: ast.Module) -> tuple[set[str], bool]:
        bound: set[str] = set()
        wildcard = False
        # Walk top-level statements plus conditional/try blocks (version
        # guards and optional imports still bind at module scope).
        stack: list[ast.stmt] = list(tree.body)
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                bound.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name):
                            bound.add(leaf.id)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    bound.add(node.target.id)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        wildcard = True
                    else:
                        bound.add(alias.asname or alias.name)
            elif isinstance(node, (ast.If, ast.Try)):
                stack.extend(getattr(node, "body", []))
                stack.extend(getattr(node, "orelse", []))
                stack.extend(getattr(node, "finalbody", []))
                for handler in getattr(node, "handlers", []):
                    stack.extend(handler.body)
        if "__getattr__" in bound:
            wildcard = True  # PEP 562 module __getattr__ can provide any name
        return bound, wildcard


@register
class NoPrint(Rule):
    """GT006: no ``print()`` outside the CLI surfaces.

    Library output goes through :mod:`logging` so embedding applications
    control verbosity; only the CLI and the lint reporter print.
    """

    id = "GT006"
    summary = "no print() in library modules"

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.violation(
                    module,
                    node,
                    "print() in a library module; use the logging module",
                )


def rule_catalog() -> Sequence[tuple[str, str]]:
    """(id, summary) for every rule, for ``--list-rules``."""
    from .engine import all_rules

    return sorted(
        (rule_id, cls.summary) for rule_id, cls in all_rules().items()
    )
