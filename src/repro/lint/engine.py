"""The lint engine: file discovery, parsing, suppression, rule dispatch.

The engine is deliberately small.  A :class:`Module` bundles everything a
rule may want (source text, parsed AST, dotted module name, suppression
table); :func:`lint_paths` walks the requested files and directories,
matches each module against every selected rule's include/exclude
patterns, and returns the surviving :class:`Violation` list sorted by
location.

Suppression syntax (checked per physical line):

* ``# lint: ignore[GT001]`` — suppress the named rule(s) on this line;
  a comma-separated list is accepted (``# lint: ignore[GT001, GT003]``).
* ``# lint: ignore`` — suppress every rule on this line.
* ``# lint: ignore-file[GT005]`` — on a line of its own, suppress the
  named rule(s) (or, with no bracket, all rules) for the whole module.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path

from typing import TYPE_CHECKING

from ..errors import ConfigurationError
from .config import LintConfig, RuleSettings

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .callgraph import Program

__all__ = [
    "Module",
    "ProgramRule",
    "Rule",
    "Violation",
    "all_rules",
    "lint_paths",
    "load_modules",
    "register",
]

_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*ignore(?P<file>-file)?\s*(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)

#: Sentinel rule-id set meaning "every rule".
_ALL = frozenset({"*"})


@dataclass(frozen=True)
class Violation:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """The familiar ``path:line:col: ID message`` single-line form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class Module:
    """A parsed source module, as handed to each rule."""

    path: Path
    relpath: str
    name: str
    source: str
    tree: ast.Module
    line_suppressions: dict[int, frozenset[str]] = field(default_factory=dict)
    file_suppressions: frozenset[str] = frozenset()

    def suppressed(self, rule_id: str, line: int) -> bool:
        if self.file_suppressions & {rule_id, "*"}:
            return True
        active = self.line_suppressions.get(line, frozenset())
        return bool(active & {rule_id, "*"})


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`id` / :attr:`summary` and implement
    :meth:`check`, yielding :class:`Violation` objects.  Instantiation is
    per-run; per-rule options from the config arrive as ``settings``.
    """

    id: str = ""
    summary: str = ""

    def __init__(self, settings: RuleSettings) -> None:
        self.settings = settings

    def check(self, module: Module) -> Iterator[Violation]:
        raise NotImplementedError

    # Helper shared by subclasses.
    def violation(
        self, module: Module, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            rule=self.id,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class ProgramRule(Rule):
    """A rule that needs the whole-program view (GT007-GT012).

    Before per-module dispatch the engine builds one
    :class:`~repro.lint.callgraph.Program` over every successfully
    parsed module and hands it to each selected program rule via
    :meth:`bind`; :meth:`check` then runs per module as usual, with
    cross-module questions answered through ``self.program``.
    """

    requires_program = True

    def __init__(self, settings: RuleSettings) -> None:
        super().__init__(settings)
        self.program: "Program | None" = None

    def bind(self, program: "Program") -> None:
        self.program = program


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.id:
        raise ConfigurationError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in _REGISTRY:
        raise ConfigurationError(f"duplicate rule id {rule_cls.id}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> dict[str, type[Rule]]:
    """All registered rules, keyed by id."""
    from . import rules as _rules  # noqa: F401  (registration side effect)
    from . import rules_concurrency as _rules2  # noqa: F401

    return dict(_REGISTRY)


# ---------------------------------------------------------------------------
# Module loading
# ---------------------------------------------------------------------------


def _parse_suppressions(
    source: str,
) -> tuple[dict[int, frozenset[str]], frozenset[str]]:
    per_line: dict[int, frozenset[str]] = {}
    per_file: set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        listed = match.group("rules")
        ids = (
            frozenset(part.strip() for part in listed.split(",") if part.strip())
            if listed
            else _ALL
        )
        if match.group("file"):
            per_file |= ids
        else:
            per_line[lineno] = per_line.get(lineno, frozenset()) | ids
    return per_line, frozenset(per_file)


def module_name_for(path: Path, root: Path) -> str:
    """Dotted module name for ``path``, relative to the lint root.

    Everything up to the innermost ``src`` layout segment is stripped —
    wherever the tree lives — so ``src/repro/core/graph.py`` and
    ``/tmp/work/src/repro/core/graph.py`` both map to
    ``repro.core.graph``, and ``tests/test_x.py`` to ``tests.test_x``.
    ``__init__.py`` maps to its package name.
    """
    try:
        parts = list(path.relative_to(root).parts)
    except ValueError:
        parts = list(path.resolve().parts)
    if "src" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("src"):]
    while parts and parts[0] in {"src", "."}:
        parts = parts[1:]
    if not parts:
        return ""
    leaf = parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[:-3]
    if leaf == "__init__":
        parts = parts[:-1]
    else:
        parts[-1] = leaf
    return ".".join(parts)


def load_module(path: Path, root: Path) -> Module:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    per_line, per_file = _parse_suppressions(source)
    try:
        relpath = path.relative_to(root).as_posix()
    except ValueError:
        relpath = path.as_posix()
    return Module(
        path=path,
        relpath=relpath,
        name=module_name_for(path, root),
        source=source,
        tree=tree,
        line_suppressions=per_line,
        file_suppressions=per_file,
    )


def matches_module(name: str, patterns: Iterable[str]) -> bool:
    """``fnmatch`` over dotted names; ``pkg.*`` also matches ``pkg`` itself."""
    for pattern in patterns:
        if fnmatchcase(name, pattern):
            return True
        if pattern.endswith(".*") and name == pattern[:-2]:
            return True
    return False


def discover_files(paths: Sequence[Path], exclude: Sequence[str]) -> list[Path]:
    """All ``.py`` files under ``paths``, minus excluded relative patterns."""
    found: list[Path] = []
    seen: set[Path] = set()
    for entry in paths:
        candidates: Iterable[Path]
        if entry.is_dir():
            candidates = sorted(entry.rglob("*.py"))
        elif entry.suffix == ".py":
            candidates = [entry]
        elif not entry.exists():
            raise ConfigurationError(f"no such file or directory: {entry}")
        else:
            candidates = []
        for path in candidates:
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            posix = path.as_posix()
            if any(fnmatchcase(posix, pattern) for pattern in exclude):
                continue
            found.append(path)
    return found


def load_modules(
    paths: Sequence[Path | str],
    config: LintConfig,
    root: Path | str | None = None,
) -> tuple[list[Module], list[Violation]]:
    """Load every python file under ``paths``.

    Returns the successfully parsed modules plus GT000 violations for
    the files that failed to parse.
    """
    root_path = Path(root) if root is not None else Path.cwd()
    modules: list[Module] = []
    violations: list[Violation] = []
    for path in discover_files([Path(p) for p in paths], config.exclude):
        try:
            modules.append(load_module(path, root_path))
        except SyntaxError as exc:
            violations.append(
                Violation(
                    rule="GT000",
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    message=f"syntax error: {exc.msg}",
                )
            )
    return modules, violations


def lint_paths(
    paths: Sequence[Path | str],
    config: LintConfig,
    root: Path | str | None = None,
) -> list[Violation]:
    """Lint every python file under ``paths`` and return the violations.

    ``root`` anchors relative output paths and dotted-module-name
    derivation; it defaults to the current working directory.  When any
    selected rule is a :class:`ProgramRule`, the whole-program view
    (symbol table, call graph) is built once over every parsed module
    and bound to those rules before dispatch.
    """
    rules = all_rules()
    unknown = [rule_id for rule_id in config.select if rule_id not in rules]
    if unknown:
        raise ConfigurationError(f"unknown rule ids selected: {unknown}")
    active = [
        rules[rule_id](config.rule_settings(rule_id))
        for rule_id in config.select
    ]
    modules, violations = load_modules(paths, config, root)
    program_rules = [
        rule
        for rule in active
        if getattr(rule, "requires_program", False)
    ]
    if program_rules:
        from .callgraph import build_program

        program = build_program(modules)
        for rule in program_rules:
            rule.bind(program)  # type: ignore[attr-defined]
    for module in modules:
        for rule in active:
            settings = rule.settings
            if settings.modules and not matches_module(
                module.name, settings.modules
            ):
                continue
            if matches_module(module.name, settings.exempt):
                continue
            for violation in rule.check(module):
                if not module.suppressed(violation.rule, violation.line):
                    violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations
