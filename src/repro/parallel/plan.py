"""The chunked task planner: split ``n_tasks`` into contiguous chunks.

The planner is deliberately dumb and fully deterministic: given the same
``(n_tasks, workers, chunk_size)`` it always produces the same chunks,
every task index in ``range(n_tasks)`` is covered by exactly one chunk,
and chunks are contiguous and ordered.  Determinism here is what lets
:func:`assemble` reconstruct results in task order no matter in which
order workers finished — the property the parity suite leans on.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any, TypeVar

from ..errors import ConfigurationError, ParallelError

__all__ = ["Chunk", "plan_chunks", "assemble", "DEFAULT_CHUNKS_PER_WORKER"]

_T = TypeVar("_T")

#: Without an explicit ``chunk_size`` the planner aims for this many
#: chunks per worker, so an unlucky slow chunk does not leave the other
#: workers idle for the whole tail of the fan-out.
DEFAULT_CHUNKS_PER_WORKER = 4


@dataclass(frozen=True)
class Chunk:
    """One contiguous slice of the task list, ``tasks[start:stop]``."""

    index: int
    start: int
    stop: int

    def __len__(self) -> int:
        return self.stop - self.start

    def __str__(self) -> str:
        return f"chunk[{self.index}]({self.start}:{self.stop})"


def plan_chunks(
    n_tasks: int,
    workers: int,
    chunk_size: int | None = None,
    *,
    max_chunks: int | None = None,
) -> tuple[Chunk, ...]:
    """Split ``range(n_tasks)`` into ordered, contiguous, disjoint chunks.

    ``chunk_size=None`` picks a size targeting
    :data:`DEFAULT_CHUNKS_PER_WORKER` chunks per worker (at least 1 task
    each).  ``max_chunks`` caps the number of chunks instead (the fabric
    uses it to bound per-call message count); it is mutually exclusive
    with an explicit ``chunk_size`` because the two caps can conflict.

    Edge cases always produce well-formed plans: ``n_tasks=0`` yields no
    chunks (never a single empty chunk) under every argument
    combination, and ``max_chunks > n_tasks`` yields ``n_tasks``
    single-task chunks rather than empty chunks or a zero chunk size.
    """
    if n_tasks < 0:
        raise ConfigurationError(f"n_tasks must be >= 0, got {n_tasks}")
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if chunk_size is not None and chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    if max_chunks is not None and max_chunks < 1:
        raise ConfigurationError(f"max_chunks must be >= 1, got {max_chunks}")
    if chunk_size is not None and max_chunks is not None:
        raise ConfigurationError(
            "chunk_size and max_chunks are mutually exclusive; a size cap "
            "and a count cap can contradict each other"
        )
    if n_tasks == 0:
        return ()
    if chunk_size is None:
        target = workers * DEFAULT_CHUNKS_PER_WORKER
        if max_chunks is not None:
            target = min(target, max_chunks)
        chunk_size = max(1, -(-n_tasks // target))
    chunks = []
    for index, start in enumerate(range(0, n_tasks, chunk_size)):
        chunks.append(Chunk(index, start, min(start + chunk_size, n_tasks)))
    return tuple(chunks)


def assemble(
    chunks: Sequence[Chunk], results: Mapping[int, Sequence[_T]]
) -> list[_T]:
    """Flatten per-chunk results back into task order.

    ``results`` maps chunk index to that chunk's per-task results, in
    whatever order the chunks completed; the output is ordered by task
    index.  A missing chunk or a result list whose length does not match
    the chunk is an infrastructure failure (a worker lost work) and
    raises :class:`~repro.errors.ParallelError`.
    """
    out: list[_T] = []
    for chunk in chunks:
        if chunk.index not in results:
            raise ParallelError(f"no results reported for {chunk}", task=chunk)
        chunk_results = results[chunk.index]
        if len(chunk_results) != len(chunk):
            raise ParallelError(
                f"{chunk} returned {len(chunk_results)} results for "
                f"{len(chunk)} tasks",
                task=chunk,
            )
        out.extend(chunk_results)
    return out


def _chunk_tasks(chunk: Chunk, tasks: Sequence[Any]) -> list[Any]:
    """The task specs a chunk covers (shared by the executors)."""
    return list(tasks[chunk.start : chunk.stop])
