"""Resolving ``parallelism`` arguments to executors.

Every parallel entry point (``aggregate``, ``explore``, the bench
sweeps, ``GraphTempoSession``) accepts ``parallelism=None | int |
"auto"``:

* ``None`` — use the ambient default: an active
  :func:`parallelism_scope` override if one is open, else the
  ``REPRO_PARALLEL_WORKERS`` environment variable, else 1 (serial).
* an ``int`` — that many workers; 1 means inline.
* ``"auto"`` — one worker per available CPU.

An *implicit* default (``None`` resolved through the environment) only
engages the pool when the workload is large enough to amortize pool
startup — callers pass a ``task_hint`` (entities to scan, chain steps to
evaluate) and work below :func:`min_parallel_work` stays inline.  An
*explicit* request always gets the pool; the parity suite relies on
forcing ``ParallelExecutor(workers=2)`` onto tiny graphs.

Which *backend* serves a multi-worker resolution is a second, orthogonal
axis: ``REPRO_PARALLEL_BACKEND`` selects ``"parallel"`` (the per-call
pool, the default), ``"sharded"`` (one process-wide persistent
:class:`~repro.parallel.fabric.ShardedExecutor` shared by every fan-out
with the same pool shape — see :func:`shared_fabric`), or ``"inline"``
(force serial, a debugging escape hatch).  Callers can also bypass
resolution entirely by opening an :func:`executor_scope` around a
specific executor instance — the seam the serving layer uses to
multiplex every request onto one fabric.

Results never depend on which executor ran: the gate is purely a
performance heuristic, and the parity suite diffs all three backends
bit-exactly.
"""

from __future__ import annotations

import atexit
import os
import threading
from collections.abc import Iterator
from contextlib import contextmanager

from ..errors import ConfigurationError
from .executor import Executor, InlineExecutor, ParallelExecutor, in_worker
from .fabric import ShardedExecutor

__all__ = [
    "default_parallelism",
    "resolve_parallelism",
    "parallelism_scope",
    "executor_scope",
    "get_executor",
    "min_parallel_work",
    "parallel_backend",
    "shared_fabric",
    "close_shared_fabrics",
    "ENV_WORKERS",
    "ENV_MIN_WORK",
    "ENV_BACKEND",
]

#: Environment variable flipping the default executor (CI parity job).
ENV_WORKERS = "REPRO_PARALLEL_WORKERS"
#: Environment variable overriding the implicit-parallelism work floor.
ENV_MIN_WORK = "REPRO_PARALLEL_MIN_WORK"
#: Environment variable selecting the executor backend for multi-worker
#: resolutions: "parallel" (per-call pool, default), "sharded"
#: (process-wide persistent fabric), or "inline" (force serial).
ENV_BACKEND = "REPRO_PARALLEL_BACKEND"

_BACKENDS = ("parallel", "sharded", "inline")

#: Below this much estimated work, an *implicit* parallel default stays
#: inline — pool startup would dominate (see docs/parallelism.md).
_DEFAULT_MIN_WORK = 4096

#: Per-thread stack of :func:`parallelism_scope` overrides.  Thread-local
#: so a scope opened on one thread cannot leak an override into fan-outs
#: resolving concurrently on another.
_SCOPE = threading.local()


def _scope_stack() -> list[int]:
    stack = getattr(_SCOPE, "stack", None)
    if stack is None:
        stack = _SCOPE.stack = []
    return stack


def _executor_stack() -> list[Executor]:
    stack = getattr(_SCOPE, "executors", None)
    if stack is None:
        stack = _SCOPE.executors = []
    return stack

Parallelism = int | str | None


def _auto_workers() -> int:
    return max(1, os.cpu_count() or 1)


def _parse(value: int | str, source: str) -> int:
    if isinstance(value, str):
        if value == "auto":
            return _auto_workers()
        try:
            value = int(value)
        except ValueError:
            raise ConfigurationError(
                f"{source} must be a positive integer or 'auto', got {value!r}"
            ) from None
    if value < 1:
        raise ConfigurationError(f"{source} must be >= 1, got {value}")
    return value


def default_parallelism() -> int:
    """The ambient worker count: scope override, else env var, else 1."""
    stack = _scope_stack()
    if stack:
        return stack[-1]
    raw = os.environ.get(ENV_WORKERS)
    if raw is None or not raw.strip():
        return 1
    return _parse(raw.strip(), ENV_WORKERS)


def resolve_parallelism(parallelism: Parallelism) -> int:
    """Normalize a ``parallelism`` argument to a concrete worker count."""
    if parallelism is None:
        return default_parallelism()
    return _parse(parallelism, "parallelism")


def min_parallel_work() -> int:
    """The work floor below which implicit parallelism stays inline."""
    raw = os.environ.get(ENV_MIN_WORK)
    if raw is None or not raw.strip():
        return _DEFAULT_MIN_WORK
    try:
        value = int(raw.strip())
    except ValueError:
        raise ConfigurationError(
            f"{ENV_MIN_WORK} must be an integer, got {raw!r}"
        ) from None
    return max(0, value)


@contextmanager
def parallelism_scope(parallelism: Parallelism) -> Iterator[int]:
    """Temporarily set the ambient default worker count.

    The session facade and tests use this to thread a worker count
    through layers (the OLAP cube, report renderers) whose signatures
    do not carry one: any ``parallelism=None`` resolution inside the
    scope sees the override.
    """
    workers = (
        default_parallelism() if parallelism is None
        else _parse(parallelism, "parallelism")
    )
    stack = _scope_stack()
    stack.append(workers)
    try:
        yield workers
    finally:
        stack.pop()


@contextmanager
def executor_scope(executor: Executor) -> Iterator[Executor]:
    """Pin a specific executor instance for this thread's fan-outs.

    Every :func:`get_executor` resolution inside the scope returns
    ``executor`` directly — no backend selection, no work-floor gating
    (the caller already decided).  Thread-local and re-entrant, like
    :func:`parallelism_scope`.  This is how the serving layer multiplexes
    many concurrent requests onto one shared
    :class:`~repro.parallel.fabric.ShardedExecutor` instead of forking a
    pool per request.
    """
    stack = _executor_stack()
    stack.append(executor)
    try:
        yield executor
    finally:
        stack.pop()


def parallel_backend() -> str:
    """The executor backend name from ``REPRO_PARALLEL_BACKEND``."""
    raw = (os.environ.get(ENV_BACKEND) or "parallel").strip() or "parallel"
    if raw not in _BACKENDS:
        raise ConfigurationError(
            f"{ENV_BACKEND} must be one of {_BACKENDS}, got {raw!r}"
        )
    return raw


# Process-wide shared fabrics, keyed by pool shape.  A sanctioned
# registry (GT009): guarded by _FABRIC_LOCK, drained at exit.
_REGISTRY: dict[tuple[int, int | None, float | None], ShardedExecutor] = {}
_FABRIC_LOCK = threading.Lock()
_ATEXIT_REGISTERED = False


def shared_fabric(
    workers: int,
    *,
    chunk_size: int | None = None,
    timeout: float | None = None,
) -> ShardedExecutor:
    """The process-wide persistent fabric for a pool shape.

    One :class:`~repro.parallel.fabric.ShardedExecutor` per
    ``(workers, chunk_size, timeout)`` key is created lazily, cached,
    and reused by every fan-out resolving under the ``sharded`` backend
    — that sharing is the whole point: payload pins and warm workers
    amortize across call sites.  A fabric found closed (a test drained
    it) is replaced transparently.  All cached fabrics drain at
    interpreter exit via :func:`close_shared_fabrics`.
    """
    global _ATEXIT_REGISTERED  # lint: ignore[GT009]
    key = (workers, chunk_size, timeout)
    with _FABRIC_LOCK:
        fabric = _REGISTRY.get(key)
        if fabric is None or fabric.closed:
            fabric = ShardedExecutor(
                workers, chunk_size=chunk_size, timeout=timeout
            )
            _REGISTRY[key] = fabric
            if not _ATEXIT_REGISTERED:
                _ATEXIT_REGISTERED = True  # lint: ignore[GT009]
                atexit.register(close_shared_fabrics)
        return fabric


def close_shared_fabrics() -> None:
    """Drain and drop every cached shared fabric (idempotent)."""
    with _FABRIC_LOCK:
        fabrics = list(_REGISTRY.values())
        _REGISTRY.clear()
    for fabric in fabrics:
        fabric.close()


def get_executor(
    parallelism: Parallelism = None,
    *,
    task_hint: int | None = None,
    chunk_size: int | None = None,
    timeout: float | None = None,
) -> Executor:
    """The executor a fan-out site should use.

    ``task_hint`` estimates the site's total work (entity rows, chain
    steps); it only matters when ``parallelism`` is ``None`` — an
    explicitly requested pool is never gated away.  Inside a pool
    worker this always returns the inline executor (no nested pools).
    An open :func:`executor_scope` short-circuits everything — the
    pinned executor handles its own inline trampoline for nested calls.
    Otherwise, multi-worker resolutions go to the backend selected by
    ``REPRO_PARALLEL_BACKEND``: a fresh per-call
    :class:`~repro.parallel.ParallelExecutor` (default) or the shared
    persistent fabric (:func:`shared_fabric`).
    """
    pinned = _executor_stack()
    if pinned:
        return pinned[-1]
    explicit = parallelism is not None
    workers = resolve_parallelism(parallelism)
    if workers <= 1 or in_worker():
        return InlineExecutor()
    if not explicit and task_hint is not None and task_hint < min_parallel_work():
        return InlineExecutor()
    backend = parallel_backend()
    if backend == "inline":
        return InlineExecutor()
    if backend == "sharded":
        return shared_fabric(workers, chunk_size=chunk_size, timeout=timeout)
    return ParallelExecutor(workers, chunk_size=chunk_size, timeout=timeout)
