"""Shard planning for the execution fabric.

A *shard* is one worker's pinned fraction of an index space.  The fabric
(:mod:`repro.parallel.fabric`) partitions every fan-out's task index
space over its workers with :func:`plan_shards` and routes each task
group to the worker owning its range (:func:`route_position`), so the
same relative region of a graph keeps landing on the same worker across
calls — that worker's memmapped pages, attribute pools and branch
predictors stay warm.

Because the repository's fan-out sites build their task lists in entity
order (aggregation partials) or reference-time order (exploration
chains), index-space sharding *is* entity-range sharding for aggregation
and time-window sharding for exploration — one mechanism, both paper
axes.  :func:`shard_backend` additionally materializes physical shard
slices of a storage backend (entity ranges via
:meth:`~repro.storage.GraphStorageBackend.slice_entities`, time windows
via :meth:`~repro.storage.GraphStorageBackend.slice_time`) for
shard-local workloads and the parity suite.

Sharding never affects results: routing is a locality heuristic, merge
order is fixed by chunk index (see :func:`repro.parallel.plan.assemble`),
and the parity suite diffs every sharding against the inline executor
bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..storage.base import GraphStorageBackend

__all__ = ["Shard", "plan_shards", "route_position", "shard_backend"]


@dataclass(frozen=True)
class Shard:
    """One worker's contiguous slice ``[start:stop)`` of an index space.

    A shard may be empty (``start == stop``) when there are fewer items
    than shards; empty shards sit at the tail so the populated prefix
    matches the populated workers.
    """

    index: int
    start: int
    stop: int

    def __len__(self) -> int:
        return self.stop - self.start

    def owns(self, position: int) -> bool:
        """Whether ``position`` falls inside this shard's range."""
        return self.start <= position < self.stop

    def __str__(self) -> str:
        return f"shard[{self.index}]({self.start}:{self.stop})"


def plan_shards(n_items: int, n_shards: int) -> tuple[Shard, ...]:
    """Partition ``range(n_items)`` into ``n_shards`` balanced shards.

    Always returns exactly ``n_shards`` shards — one per worker, so the
    pinning is total — with contiguous, ordered ranges whose sizes
    differ by at most one; when ``n_items < n_shards`` the tail shards
    are empty rather than the plan being truncated.  ``n_items=0``
    yields all-empty shards.  Deterministic in its arguments.
    """
    if n_items < 0:
        raise ConfigurationError(f"n_items must be >= 0, got {n_items}")
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    base, extra = divmod(n_items, n_shards)
    shards = []
    start = 0
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        shards.append(Shard(index, start, start + size))
        start += size
    return tuple(shards)


def route_position(position: int, n_items: int, n_shards: int) -> int:
    """The shard index owning ``position`` under :func:`plan_shards`.

    Positions outside ``range(n_items)`` clamp to the nearest shard, so
    routing a boundary chunk never falls off the plan.
    """
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    if n_items <= 0:
        return 0
    position = max(0, min(n_items - 1, position))
    base, extra = divmod(n_items, n_shards)
    # The first `extra` shards hold (base + 1) items each.
    boundary = extra * (base + 1)
    if position < boundary:
        return position // (base + 1)
    if base == 0:  # fewer items than shards; everything lives in the prefix
        return min(position, n_shards - 1)
    return extra + (position - boundary) // base


def shard_backend(
    backend: GraphStorageBackend,
    n_shards: int,
    by: str = "entity",
) -> tuple[GraphStorageBackend, ...]:
    """Materialized physical shards of a storage backend.

    ``by="entity"`` slices node rows into balanced ranges (edge rows and
    the timeline stay whole — aggregation partials merge across node
    shards); ``by="edges"`` slices edge rows instead; ``by="time"``
    slices the timeline into contiguous windows, keeping every entity
    row.  Empty shards are returned as empty slices, keeping the plan
    total.  Every shard is a full :class:`~repro.storage.GraphStorageBackend`
    honoring the whole conformance contract over its slice.
    """
    if by in ("entity", "nodes"):
        plan = plan_shards(len(backend.node_labels), n_shards)
        return tuple(
            backend.slice_entities("nodes", shard.start, shard.stop)
            for shard in plan
        )
    if by == "edges":
        plan = plan_shards(len(backend.edge_labels), n_shards)
        return tuple(
            backend.slice_entities("edges", shard.start, shard.stop)
            for shard in plan
        )
    if by == "time":
        times = backend.times
        plan = plan_shards(len(times), n_shards)
        return tuple(
            backend.slice_time(times[shard.start : shard.stop])
            for shard in plan
        )
    raise ConfigurationError(
        f"unknown shard axis {by!r}; expected 'entity', 'edges' or 'time'"
    )
