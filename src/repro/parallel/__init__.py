"""``repro.parallel`` — the dependency-free parallel execution layer.

A chunked task planner (:mod:`repro.parallel.plan`), two executors with
one contract (:mod:`repro.parallel.executor`), and the resolution rules
mapping ``parallelism=N | "auto" | None`` arguments onto them
(:mod:`repro.parallel.config`).  The fan-out sites live with the code
they parallelize: per-entity aggregation partials in
:mod:`repro.core.aggregation`, per-reference exploration chains in
:mod:`repro.exploration.explore`, figure sweeps in
:mod:`repro.bench.experiments`.

Everything the pool produces is bit-identical to the serial path — see
``docs/parallelism.md`` for the argument and ``tests/test_parallel_parity.py``
for the enforcement.
"""

from __future__ import annotations

from .config import (
    ENV_MIN_WORK,
    ENV_WORKERS,
    default_parallelism,
    get_executor,
    min_parallel_work,
    parallelism_scope,
    resolve_parallelism,
)
from .executor import Executor, InlineExecutor, ParallelExecutor, in_worker
from .plan import DEFAULT_CHUNKS_PER_WORKER, Chunk, assemble, plan_chunks

__all__ = [
    "Chunk",
    "plan_chunks",
    "assemble",
    "DEFAULT_CHUNKS_PER_WORKER",
    "Executor",
    "InlineExecutor",
    "ParallelExecutor",
    "in_worker",
    "default_parallelism",
    "resolve_parallelism",
    "parallelism_scope",
    "get_executor",
    "min_parallel_work",
    "ENV_WORKERS",
    "ENV_MIN_WORK",
]
