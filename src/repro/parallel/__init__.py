"""``repro.parallel`` — the dependency-free parallel execution layer.

A chunked task planner (:mod:`repro.parallel.plan`), three executors
with one contract — serial, per-call pool, and the persistent sharded
fabric (:mod:`repro.parallel.executor`, :mod:`repro.parallel.fabric`) —
shard planning/routing (:mod:`repro.parallel.shards`), and the
resolution rules mapping ``parallelism=N | "auto" | None`` arguments and
the ``REPRO_PARALLEL_BACKEND`` selector onto them
(:mod:`repro.parallel.config`).  The fan-out sites live with the code
they parallelize: per-entity aggregation partials in
:mod:`repro.core.aggregation`, per-reference exploration chains in
:mod:`repro.exploration.explore`, figure sweeps in
:mod:`repro.bench.experiments`.

Everything every backend produces is bit-identical to the serial path —
see ``docs/parallelism.md`` for the argument and
``tests/test_parallel_parity.py`` / ``tests/test_fabric_parity.py`` for
the enforcement.
"""

from __future__ import annotations

from .config import (
    ENV_BACKEND,
    ENV_MIN_WORK,
    ENV_WORKERS,
    close_shared_fabrics,
    default_parallelism,
    executor_scope,
    get_executor,
    min_parallel_work,
    parallel_backend,
    parallelism_scope,
    resolve_parallelism,
    shared_fabric,
)
from .executor import Executor, InlineExecutor, ParallelExecutor, in_worker
from .fabric import ShardedExecutor
from .plan import DEFAULT_CHUNKS_PER_WORKER, Chunk, assemble, plan_chunks
from .shards import Shard, plan_shards, route_position, shard_backend

__all__ = [
    "Chunk",
    "plan_chunks",
    "assemble",
    "DEFAULT_CHUNKS_PER_WORKER",
    "Shard",
    "plan_shards",
    "route_position",
    "shard_backend",
    "Executor",
    "InlineExecutor",
    "ParallelExecutor",
    "ShardedExecutor",
    "in_worker",
    "default_parallelism",
    "resolve_parallelism",
    "parallelism_scope",
    "executor_scope",
    "get_executor",
    "min_parallel_work",
    "parallel_backend",
    "shared_fabric",
    "close_shared_fabrics",
    "ENV_WORKERS",
    "ENV_MIN_WORK",
    "ENV_BACKEND",
]
