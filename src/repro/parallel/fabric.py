"""The sharded execution fabric: a persistent, shard-pinned worker pool.

:class:`~repro.parallel.ParallelExecutor` re-forks a process pool and
re-ships the whole payload on every ``map`` call — correct, but nothing
amortizes across calls, which is exactly what a serving layer needs.
:class:`ShardedExecutor` keeps the same ``Executor`` contract
(``map(fn, tasks, payload)``, bit-identical results, identical failure
taxonomy) while amortizing everything that can be amortized:

* **persistent workers** — one long-lived process per worker, created
  lazily on first use and reused across every subsequent call; no
  per-call fork;
* **payload pinning** — a payload (the graph, a prepared
  :class:`~repro.exploration.events.EventCounter`) is shipped to a
  worker once and cached under a parent-assigned key; later calls send
  only the key and the task specs.  Memmap-backed columnar graphs
  pickle as their path (:mod:`repro.storage.columnar`), so every worker
  maps the same read-only pages;
* **shard routing** — each worker owns a fixed fraction of every task
  index space (:mod:`repro.parallel.shards`); task chunks are routed to
  the owner, so the same entity ranges / reference windows keep hitting
  the same warm worker;
* **batched task groups** — all chunks bound for one worker travel in a
  single message and return in a single reply, so IPC round-trips per
  call are ``O(workers)``, not ``O(chunks)``.

Lifecycle robustness: workers are health-checked (:meth:`~ShardedExecutor.health_check`,
plus an optional heartbeat thread), a worker death is detected in-band
and the failed task group is retried on a fresh worker up to
``max_restarts`` times before a typed
:class:`~repro.errors.WorkerCrashError` surfaces; a blown ``timeout``
kills the straggler and raises :class:`~repro.errors.WorkerTimeoutError`
without poisoning the pool; :meth:`~ShardedExecutor.close` drains every
worker and is idempotent.  Domain errors raised inside a shard are never
retried — they re-raise as their taxonomy type, matching the inline
executor bit-for-bit.

``map`` is thread-safe: concurrent callers (the
:class:`~repro.serving.QueryServer` multiplexes many request threads
onto one fabric) serialize per worker and overlap across workers.
:meth:`~ShardedExecutor.bind_store` subscribes to a
:class:`~repro.streaming.StreamingStore`'s invalidation hooks so payload
pins are dropped — and the shard plan recomputed — whenever a new graph
version is published.

Everything is observable under the ``fabric.*`` metric family and the
``fabric.map`` span; see ``docs/observability.md``.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from collections.abc import Callable, Sequence
from multiprocessing.connection import Connection
from typing import TYPE_CHECKING, Any

from ..errors import (
    ConfigurationError,
    GraphTempoError,
    ParallelError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer, trace_span
from .executor import (
    Executor,
    InlineExecutor,
    TaskFn,
    _ChunkFailure,
    _ChunkOutcome,
    _execute_chunk,
    _init_worker,
    in_worker,
)
from .plan import Chunk, assemble, plan_chunks
from .shards import plan_shards, route_position

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from ..streaming.store import GraphVersion, StreamingStore

__all__ = ["ShardedExecutor"]

#: How many distinct payloads the parent keeps pinned (strong refs);
#: older pins are evicted LRU and dropped from worker caches via the
#: retain set piggybacked on the next dispatch.
PAYLOAD_CAPACITY = 4

#: Reply wait while draining a worker at close / pinging at health check.
_DRAIN_TIMEOUT_S = 5.0

#: Deadline polls wake at this cadence to re-check worker liveness, so a
#: crash is detected even when EOF never arrives (see _FORK_LOCK below).
_LIVENESS_POLL_S = 1.0

#: Serializes pipe creation + fork across worker slots.  Without it, two
#: concurrent ``start()`` calls interleave so that worker A forks between
#: worker B's ``Pipe()`` and the parent-side ``child_conn.close()`` — A
#: then inherits B's child end, and when B's process dies the pipe never
#: delivers EOF (A's leaked copy keeps it open), turning the crash into a
#: full deadline stall.  ``_reap`` closes connections under the same lock
#: so the stale-connection snapshot taken at fork time stays valid.
_FORK_LOCK = threading.Lock()


def _worker_main(
    conn: Connection,
    worker_index: int,
    stale_conns: tuple[Connection, ...] = (),
) -> None:
    """The persistent worker loop.

    One duplex pipe, strictly request/reply: the parent holds the
    worker's lock across each ``send``/``recv`` pair, so the worker
    never sees interleaved requests.  Payloads install into a local
    cache pruned to the parent's retain set; chunks execute through the
    same :func:`~repro.parallel.executor._execute_chunk` core as the
    per-call pool, so outcomes (results, spans, metric deltas, failure
    envelopes) are identical.

    ``stale_conns`` are pipe ends inherited across the fork that belong
    to other workers (plus this worker's own parent end): closing them
    immediately keeps EOF semantics exact — our death closes our only
    child end, and the parent's death closes the only parent end.
    """
    for stale_conn in stale_conns:
        try:
            stale_conn.close()
        except OSError:  # pragma: no cover - already gone
            pass
    _init_worker(None)  # mark the process; nested fan-outs run inline
    payloads: dict[int, Any] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent went away
            break
        kind = message[0]
        if kind == "stop":
            try:
                conn.send(("stopped", worker_index))
            except (OSError, ValueError):  # pragma: no cover - racing close
                pass
            break
        if kind == "ping":
            conn.send(("pong", message[1]))
            continue
        # ("run", group_id, key, retain, fn, trace_enabled, chunk_items,
        #  payload?) — payload present only when the worker lacks the key.
        (_, group_id, key, retain, fn, trace_enabled, chunk_items) = message[:7]
        if len(message) > 7:
            payloads[key] = message[7]
        for stale in [k for k in payloads if k not in retain]:
            del payloads[stale]
        if key not in payloads:
            conn.send(("missing", group_id, key))
            continue
        payload = payloads[key]
        outcomes = [
            (index, _execute_chunk(fn, payload, index, tasks, trace_enabled))
            for index, tasks in chunk_items
        ]
        try:
            conn.send(("done", group_id, outcomes))
        except Exception:
            # An unpicklable result cannot cross the pipe; surface it as
            # a structured failure instead of dying silently.
            first = chunk_items[0][1][0] if chunk_items and chunk_items[0][1] else None
            conn.send(("error", group_id, f"result not picklable for {first!r}"))
    conn.close()


class _WorkerDied(ParallelError):
    """Internal: the worker's pipe broke or its process exited."""


class _WorkerTimedOut(ParallelError):
    """Internal: the worker missed the caller's deadline."""


class _FabricWorker:
    """Parent-side handle for one persistent, shard-pinned worker.

    The lock serializes callers onto the worker's pipe; everything else
    (process, connection, installed payload keys) is owned by whoever
    holds the lock.  ``restarts`` counts lifetime replacements.
    """

    def __init__(self, index: int, ctx: Any) -> None:
        self.index = index
        self._ctx = ctx
        self.lock = threading.Lock()
        self.process: Any = None
        self.conn: Connection | None = None
        self.installed: set[int] = set()
        self.restarts = 0
        #: Sibling slots in the same pool; their live parent connections
        #: leak into our child at fork time and must be closed there.
        self.peers: Sequence["_FabricWorker"] = ()

    # -- lifecycle (caller holds self.lock) -----------------------------

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def start(self) -> None:
        with _FORK_LOCK:
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            if self._ctx.get_start_method() == "fork":
                # Snapshot every pipe end the fork will leak into the
                # child; the lock keeps the snapshot valid until then.
                stale_conns = tuple(
                    peer.conn
                    for peer in self.peers
                    if peer is not self and peer.conn is not None
                ) + (parent_conn,)
            else:  # spawn/forkserver children inherit nothing
                stale_conns = ()
            process = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, self.index, stale_conns),
                name=f"repro-fabric-{self.index}",
                daemon=True,
            )
            process.start()
            child_conn.close()
        self.process = process
        self.conn = parent_conn
        self.installed = set()
        get_metrics().inc("fabric.workers_started")

    def ensure_alive(self) -> None:
        if not self.alive:
            if self.process is not None:
                self._reap()
                self.restarts += 1
                get_metrics().inc("fabric.restarts")
            self.start()

    def restart(self) -> None:
        self._reap()
        self.restarts += 1
        get_metrics().inc("fabric.restarts")
        self.start()

    def _reap(self) -> None:
        if self.conn is not None:
            # Under _FORK_LOCK so a sibling's in-flight start() never
            # sees this connection die between snapshot and fork.
            with _FORK_LOCK:
                try:
                    self.conn.close()
                except OSError:  # pragma: no cover - already gone
                    pass
                self.conn = None
        if self.process is not None:
            if self.process.is_alive():
                self.process.terminate()
            self.process.join(timeout=_DRAIN_TIMEOUT_S)
            if self.process.is_alive():  # pragma: no cover - stuck kernel
                self.process.kill()
                self.process.join(timeout=_DRAIN_TIMEOUT_S)
            try:
                self.process.close()
            except ValueError:  # pragma: no cover - see _run_group: a
                # just-killed child can be unreapable for an instant and
                # then still reads as "running"; dropping the handle is
                # safe — the join above already waited for it.
                pass
            self.process = None
        self.installed = set()

    def stop(self) -> None:
        """Drain politely, then reap whatever is left."""
        if self.conn is not None and self.alive:
            try:
                self.conn.send(("stop",))
                if self.conn.poll(_DRAIN_TIMEOUT_S):
                    self.conn.recv()
            except (OSError, EOFError, BrokenPipeError):
                pass
        self._reap()

    # -- protocol (caller holds self.lock) ------------------------------

    def request(self, message: tuple[Any, ...], deadline: float | None) -> Any:
        """One send/recv exchange under the caller's deadline."""
        conn = self.conn
        if conn is None:  # pragma: no cover - defends against misuse
            raise _WorkerDied(f"worker {self.index} has no connection")
        try:
            conn.send(message)
            while True:
                # Poll in short slices and re-check liveness each wake:
                # EOF alone cannot be trusted to signal a crash (a pipe
                # end leaked to a sibling keeps the socket open), and a
                # dead worker must surface as _WorkerDied — retryable —
                # rather than silently eating the caller's deadline.
                if deadline is None:
                    wait = _DRAIN_TIMEOUT_S
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        raise _WorkerTimedOut(
                            f"worker {self.index} missed the deadline"
                        )
                    wait = min(remaining, _LIVENESS_POLL_S)
                if not conn.poll(wait):
                    if not self.alive:
                        raise _WorkerDied(
                            f"worker {self.index} died mid-request"
                        )
                    continue
                return conn.recv()
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise _WorkerDied(
                f"worker {self.index} died mid-request: {exc}"
            ) from exc

    def ping(self, timeout: float) -> bool:
        token = time.monotonic_ns()
        try:
            reply = self.request(("ping", token), time.monotonic() + timeout)
        except ParallelError:
            return False
        return bool(reply == ("pong", token))


class ShardedExecutor(Executor):
    """A persistent, shard-pinned, batching process-pool executor.

    Parameters
    ----------
    workers:
        Pool size (>= 1); ``workers=1`` degrades to inline execution.
    chunk_size:
        Tasks per chunk, ``None`` (default) lets the planner pick.
    timeout:
        Per-``map`` deadline in seconds; blowing it raises
        :class:`~repro.errors.WorkerTimeoutError` and kills the
        straggling worker (the pool stays usable).
    start_method:
        Multiprocessing start method; default prefers ``fork``.
    max_restarts:
        How many times one ``map`` call restarts a crashed worker and
        retries its task group before
        :class:`~repro.errors.WorkerCrashError` surfaces.
    heartbeat_interval:
        Seconds between background health checks (``None`` disables the
        heartbeat thread; crash detection still happens in-band).

    The pool starts cold: no process exists until the first ``map``.
    States are ``cold -> running -> closed`` (:attr:`state`); a closed
    fabric raises :class:`~repro.errors.ParallelError` on ``map``.
    """

    def __init__(
        self,
        workers: int,
        *,
        chunk_size: int | None = None,
        timeout: float | None = None,
        start_method: str | None = None,
        max_restarts: int = 2,
        heartbeat_interval: float | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if timeout is not None and timeout <= 0:
            raise ConfigurationError(f"timeout must be positive, got {timeout}")
        if max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ConfigurationError(
                f"heartbeat interval must be positive, got {heartbeat_interval}"
            )
        available = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in available else available[0]
        elif start_method not in available:
            raise ConfigurationError(
                f"start method {start_method!r} unavailable; "
                f"choose one of {available!r}"
            )
        self.workers = workers
        self.chunk_size = chunk_size
        self.timeout = timeout
        self.start_method = start_method
        self.max_restarts = max_restarts
        self.heartbeat_interval = heartbeat_interval
        ctx = multiprocessing.get_context(start_method)
        self._workers = tuple(_FabricWorker(i, ctx) for i in range(workers))
        for worker in self._workers:
            worker.peers = self._workers
        self._closed = False
        self._started = False
        self._state_lock = threading.Lock()
        # Payload pins: id(payload) -> (key, strong ref).  The strong ref
        # keeps the id stable while pinned; eviction is LRU.
        self._payload_lock = threading.Lock()
        self._payloads: dict[int, tuple[int, Any]] = {}
        self._next_key = 0
        self._group_counter = 0
        self._unsubscribes: list[Callable[[], None]] = []
        self._heartbeat_stop = threading.Event()
        self._heartbeat_thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def state(self) -> str:
        """``cold`` (no processes yet), ``running``, or ``closed``."""
        if self._closed:
            return "closed"
        return "running" if self._started else "cold"

    def worker_pids(self) -> tuple[int | None, ...]:
        """Current worker process ids (``None`` for unstarted slots)."""
        return tuple(
            worker.process.pid if worker.process is not None else None
            for worker in self._workers
        )

    def restarts(self) -> int:
        """Lifetime worker replacements across the pool."""
        return sum(worker.restarts for worker in self._workers)

    def __repr__(self) -> str:
        return (
            f"ShardedExecutor(workers={self.workers}, state={self.state!r}, "
            f"start_method={self.start_method!r})"
        )

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        """Drain and terminate every worker; idempotent.

        Unsubscribes from any bound streaming stores, stops the
        heartbeat thread, sends each worker a stop message and reaps the
        processes, so no worker can outlive the fabric.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        self._heartbeat_stop.set()
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(timeout=_DRAIN_TIMEOUT_S)
            self._heartbeat_thread = None
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes.clear()
        for worker in self._workers:
            with worker.lock:
                worker.stop()
        with self._payload_lock:
            self._payloads.clear()

    def _ensure_running(self) -> None:
        with self._state_lock:
            if self._closed:
                raise ParallelError("fabric is closed")
            if not self._started:
                self._started = True
                if self.heartbeat_interval is not None:
                    self._heartbeat_thread = threading.Thread(
                        target=self._heartbeat_loop,
                        name="repro-fabric-heartbeat",
                        daemon=True,
                    )
                    self._heartbeat_thread.start()

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------

    def health_check(self, timeout: float = 1.0) -> tuple[bool, ...]:
        """Ping every idle worker; restart the dead, skip the busy.

        Returns one flag per worker: ``True`` when the worker answered
        (or was restarted into a healthy state), ``False`` when it is
        busy serving a request (its liveness is checked in-band there).
        """
        get_metrics().inc("fabric.heartbeats")
        status = []
        for worker in self._workers:
            if not worker.lock.acquire(blocking=False):
                status.append(False)
                continue
            try:
                if worker.process is None:
                    status.append(True)  # cold slot; nothing to check
                    continue
                if not worker.alive or not worker.ping(timeout):
                    worker.restart()
                status.append(True)
            finally:
                worker.lock.release()
        return tuple(status)

    def _heartbeat_loop(self) -> None:
        interval = self.heartbeat_interval
        assert interval is not None
        while not self._heartbeat_stop.wait(interval):
            self.health_check()

    # ------------------------------------------------------------------
    # Streaming integration
    # ------------------------------------------------------------------

    def bind_store(self, store: "StreamingStore") -> Callable[[], None]:
        """Follow a streaming store: every published version invalidates
        the payload pins (the superseded graph will never be mapped
        again) and the next call re-pins — and thereby re-shards —
        against the new version.  Returns an unsubscribe callable; the
        subscription is also torn down by :meth:`close`."""
        _, unsubscribe = store.subscribe(self._on_version)
        self._unsubscribes.append(unsubscribe)
        return unsubscribe

    def _on_version(self, version: "GraphVersion") -> None:
        self.invalidate()

    def invalidate(self) -> None:
        """Drop every payload pin (worker caches prune on next dispatch)."""
        with self._payload_lock:
            self._payloads.clear()
        get_metrics().inc("fabric.invalidations")

    # ------------------------------------------------------------------
    # Payload pinning
    # ------------------------------------------------------------------

    def _pin_payload(self, payload: Any) -> tuple[int, tuple[int, ...]]:
        """The payload's pin key plus the current retain set.

        Pins hold strong references, so ``id(payload)`` cannot be reused
        while its entry lives; eviction is LRU at
        :data:`PAYLOAD_CAPACITY` entries.
        """
        with self._payload_lock:
            ident = id(payload)
            entry = self._payloads.pop(ident, None)
            if entry is None:
                key = self._next_key
                self._next_key += 1
                entry = (key, payload)
            self._payloads[ident] = entry  # move to MRU position
            while len(self._payloads) > PAYLOAD_CAPACITY:
                evicted_ident = next(iter(self._payloads))
                evicted_key = self._payloads.pop(evicted_ident)[0]
                for worker in self._workers:
                    worker.installed.discard(evicted_key)
            retain = tuple(key for key, _ in self._payloads.values())
            return entry[0], retain

    def _next_group_id(self) -> int:
        with self._payload_lock:
            self._group_counter += 1
            return self._group_counter

    # ------------------------------------------------------------------
    # The fan-out
    # ------------------------------------------------------------------

    def map(
        self, fn: TaskFn, tasks: Sequence[Any], payload: Any = None
    ) -> list[Any]:
        tasks = list(tasks)
        metrics = get_metrics()
        metrics.inc("fabric.maps")
        if not tasks:
            return []
        if self.workers == 1 or in_worker():
            # Same trampoline as ParallelExecutor: nested fan-outs and
            # single-worker fabrics run inline, bit-identically, without
            # IPC.  GT007 is enforced at external submission sites.
            return InlineExecutor().map(fn, tasks, payload)  # lint: ignore[GT007]
        self._ensure_running()
        chunks = plan_chunks(
            len(tasks),
            self.workers,
            self.chunk_size,
            max_chunks=None if self.chunk_size is not None else self.workers * 4,
        )
        groups = self._route(chunks, len(tasks))
        metrics.inc("fabric.task_groups", len(groups))
        metrics.inc("fabric.tasks_dispatched", len(tasks))
        deadline = (
            None if self.timeout is None else time.monotonic() + self.timeout
        )
        with trace_span(
            "fabric.map", tasks=len(tasks), groups=len(groups),
            workers=self.workers,
        ):
            outcomes = self._dispatch(groups, tasks, fn, payload, deadline)
            results: dict[int, list[Any]] = {}
            tracer = get_tracer()
            for chunk in chunks:
                outcome = outcomes[chunk.index]
                if isinstance(outcome, _ChunkFailure):
                    metrics.inc("fabric.tasks_failed")
                    metrics.merge(outcome.metrics)
                    if isinstance(outcome.exception, GraphTempoError):
                        # Domain failures keep their taxonomy type so the
                        # fabric and the inline executor fail identically.
                        raise outcome.exception
                    raise ParallelError(
                        f"task {outcome.task!r} raised "
                        f"{outcome.type_name}: {outcome.message}",
                        task=outcome.task,
                    )
                metrics.merge(outcome.metrics)
                if outcome.span is not None and tracer.enabled:
                    tracer.attach(outcome.span)
                results[chunk.index] = outcome.results
            metrics.inc("fabric.tasks_completed", len(tasks))
            return assemble(chunks, results)

    def _route(
        self, chunks: Sequence[Chunk], n_tasks: int
    ) -> list[tuple[_FabricWorker, list[Chunk]]]:
        """Group chunks by the worker pinned to their index range.

        The shard plan is recomputed per call from ``n_tasks`` (so a
        rebound graph re-shards for free), but it is deterministic: the
        same fan-out shape always routes the same ranges to the same
        workers.
        """
        plan = plan_shards(n_tasks, self.workers)
        grouped: dict[int, list[Chunk]] = {}
        for chunk in chunks:
            owner = route_position(chunk.start, n_tasks, len(plan))
            grouped.setdefault(owner, []).append(chunk)
        return [
            (self._workers[index], grouped[index]) for index in sorted(grouped)
        ]

    def _dispatch(
        self,
        groups: Sequence[tuple[_FabricWorker, list[Chunk]]],
        tasks: Sequence[Any],
        fn: TaskFn,
        payload: Any,
        deadline: float | None,
    ) -> dict[int, _ChunkOutcome | _ChunkFailure]:
        """Run every task group, one batched message per worker.

        Groups overlap across workers via short-lived dispatch threads
        (the last group runs on the calling thread); failures are
        resolved in chunk order so completion order cannot influence
        which error surfaces.
        """
        results: list[dict[int, _ChunkOutcome | _ChunkFailure] | None] = [
            None
        ] * len(groups)
        errors: list[BaseException | None] = [None] * len(groups)

        def run(position: int) -> None:
            worker, chunks = groups[position]
            try:
                results[position] = self._run_group(
                    worker, chunks, tasks, fn, payload, deadline
                )
            except BaseException as exc:  # resolved in chunk order below
                errors[position] = exc

        threads = [
            threading.Thread(
                target=run, args=(position,), name="repro-fabric-dispatch"
            )
            for position in range(len(groups) - 1)
        ]
        for thread in threads:
            thread.start()
        run(len(groups) - 1)
        for thread in threads:
            thread.join()
        # Deterministic error precedence: the group owning the earliest
        # chunk wins, matching ParallelExecutor's in-order resolution.
        outcomes: dict[int, _ChunkOutcome | _ChunkFailure] = {}
        for position, (worker, chunks) in sorted(
            enumerate(groups), key=lambda item: item[1][1][0].index
        ):
            error = errors[position]
            if error is not None:
                get_metrics().inc(
                    "fabric.tasks_failed", sum(len(c) for c in chunks)
                )
                raise error
            group_results = results[position]
            assert group_results is not None
            outcomes.update(group_results)
        return outcomes

    def _run_group(
        self,
        worker: _FabricWorker,
        chunks: Sequence[Chunk],
        tasks: Sequence[Any],
        fn: TaskFn,
        payload: Any,
        deadline: float | None,
    ) -> dict[int, _ChunkOutcome | _ChunkFailure]:
        """One worker's batched task group, with bounded restart-retry.

        A dead worker is replaced and the whole group re-submitted (task
        functions are pure — GT011 — so re-execution is safe and
        bit-identical); a missed deadline kills the worker and raises
        immediately; domain failures inside chunks travel back in the
        reply and are never retried.
        """
        metrics = get_metrics()
        first_task = tasks[chunks[0].start]
        chunk_items = [
            (chunk.index, list(tasks[chunk.start : chunk.stop]))
            for chunk in chunks
        ]
        trace_enabled = get_tracer().enabled
        with worker.lock:
            attempts = self.max_restarts + 1
            for attempt in range(attempts):
                if attempt:
                    metrics.inc("fabric.retries")
                worker.ensure_alive()
                key, retain = self._pin_payload(payload)
                message: tuple[Any, ...] = (
                    "run",
                    self._next_group_id(),
                    key,
                    retain,
                    fn,
                    trace_enabled,
                    chunk_items,
                )
                if key not in worker.installed:
                    message = message + (payload,)
                    metrics.inc("fabric.payload_installs")
                else:
                    metrics.inc("fabric.payload_hits")
                try:
                    reply = worker.request(message, deadline)
                except _WorkerTimedOut:
                    worker.restart()
                    raise WorkerTimeoutError(
                        f"task group on worker {worker.index} missed the "
                        f"{self.timeout}s deadline",
                        task=first_task,
                    ) from None
                except _WorkerDied:
                    # Replace the worker unconditionally rather than via
                    # ensure_alive(): a freshly SIGKILLed child can hold
                    # its pipe closed (EOF observed) for a moment before
                    # it is reapable, during which is_alive() still says
                    # True.  restart() joins the corpse properly, so the
                    # retry never runs against a half-dead process.
                    worker.restart()
                    continue
                if reply[0] == "missing":
                    # The worker pruned (or never had) the key — e.g. it
                    # restarted between bookkeeping and dispatch.  Force a
                    # reinstall and retry without burning a restart.
                    worker.installed.discard(reply[2])
                    continue
                if reply[0] == "error":
                    raise ParallelError(str(reply[2]), task=first_task)
                worker.installed.add(key)
                worker.installed &= set(retain)
                return dict(reply[2])
            raise WorkerCrashError(
                f"worker {worker.index} died {attempts} time(s) running the "
                f"same task group; giving up",
                task=first_task,
            )
