"""Process-pool and inline executors with deterministic result ordering.

The execution contract is a single method::

    executor.map(fn, tasks, payload=...) -> list[result]

``fn(payload, task)`` must be a module-level function (so the spawn
fallback can pickle it by reference); ``tasks`` is a sequence of small
picklable task specs; ``payload`` is the large read-only state every
task needs — the temporal graph, a prepared
:class:`~repro.exploration.events.EventCounter`, and so on.

:class:`InlineExecutor` runs everything in the calling process and is
the serial baseline the parity suite diffs against.
:class:`ParallelExecutor` fans the chunked task list out over a process
pool.  On platforms with ``fork`` (Linux, the benchmark target) the
payload is **shared**, not pickled: it is published in a module global
before the pool forks, so workers inherit the frames copy-on-write and
only the task specs cross the pipe.  Elsewhere the payload is pickled
once per worker through the pool initializer.

Results always come back in task order, regardless of completion order:
chunks are gathered by chunk index and flattened with
:func:`repro.parallel.plan.assemble`.  Observability crosses the
process boundary too — each chunk runs under a fresh tracer/metrics
registry, and the parent re-parents the returned span tree into its own
active trace and merges the metric deltas, so a parallel run's trace
and counters match the serial run's.

Failure surfacing: a domain error raised inside ``fn`` (anything from
the :mod:`repro.errors` taxonomy) is re-raised in the parent as itself,
keeping differential error parity with the inline executor; any other
worker exception, a crashed worker process, or a blown deadline raises
a typed :class:`~repro.errors.ParallelError` carrying the failing task
spec.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any

from ..errors import (
    ConfigurationError,
    GraphTempoError,
    ParallelError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from ..obs.metrics import MetricsRegistry, get_metrics, set_metrics
from ..obs.trace import Span, Tracer, get_tracer, set_tracer
from .plan import Chunk, assemble, plan_chunks

__all__ = [
    "TaskFn",
    "Executor",
    "InlineExecutor",
    "ParallelExecutor",
    "in_worker",
]

#: The signature of a fan-out work function.
TaskFn = Callable[[Any, Any], Any]


@dataclass
class _SharedState:
    """What a worker needs beyond its task specs."""

    fn: TaskFn
    payload: Any
    trace_enabled: bool


#: Published by the parent immediately before the pool forks (fork
#: start method) or shipped through the pool initializer (spawn).
_SHARED: _SharedState | None = None

#: Serializes publish-then-fork so concurrent ``map`` calls from
#: different threads (the serving workload) cannot fork a pool while
#: another thread's payload is published in ``_SHARED``.  Held only
#: across pool creation and submission — execution overlaps freely.
_PUBLISH_LOCK = threading.Lock()

#: True inside a pool worker process; nested fan-outs then run inline.
_IN_WORKER = False


def in_worker() -> bool:
    """Whether this process is a :class:`ParallelExecutor` worker."""
    return _IN_WORKER


@dataclass
class _ChunkOutcome:
    """One chunk's results plus its observability delta."""

    results: list[Any]
    span: Span | None
    metrics: dict[str, Any]


@dataclass
class _ChunkFailure:
    """A task inside a chunk raised; the exception travels by value."""

    task: Any
    type_name: str
    message: str
    exception: BaseException | None
    metrics: dict[str, Any]


def _init_worker(state: _SharedState | None) -> None:
    """Pool initializer: adopt the shared state (spawn) or keep the
    fork-inherited one; either way, mark the process as a worker."""
    # The (_SHARED, _IN_WORKER) pair IS the sanctioned fork-COW payload
    # channel: written once per fan-out in the parent (or adopted here
    # under spawn) before any task runs, read-only inside workers, and
    # cleared by _dispatch's finally.  GT008 enforces the read-only half.
    global _SHARED, _IN_WORKER  # lint: ignore[GT009]
    _IN_WORKER = True  # lint: ignore[GT009]
    if state is not None:
        _SHARED = state  # lint: ignore[GT009]


def _picklable(exc: BaseException) -> BaseException | None:
    try:
        pickle.dumps(exc)
    except Exception:
        return None
    return exc


def _execute_chunk(
    fn: TaskFn,
    payload: Any,
    chunk_index: int,
    tasks: Sequence[Any],
    trace_enabled: bool,
) -> _ChunkOutcome | _ChunkFailure:
    """Worker-side chunk loop: fresh observability, then run each task.

    Every chunk runs under its own tracer and metrics registry so the
    outcome carries exactly this chunk's delta; the parent merges the
    deltas in chunk order, which makes parallel traces/counters add up
    to the serial run's.  Shared by the per-call pool workers here and
    the persistent fabric workers (:mod:`repro.parallel.fabric`), so
    both backends surface identical outcomes for identical chunks.
    """
    tracer = Tracer(enabled=trace_enabled)
    registry = MetricsRegistry()
    previous_tracer = set_tracer(tracer)
    previous_metrics = set_metrics(registry)
    try:
        results: list[Any] = []
        with tracer.span("parallel.chunk", chunk=chunk_index, tasks=len(tasks)):
            for task in tasks:
                try:
                    results.append(fn(payload, task))
                except Exception as exc:
                    return _ChunkFailure(
                        task=task,
                        type_name=type(exc).__name__,
                        message=str(exc),
                        exception=_picklable(exc),
                        metrics=registry.dump(),
                    )
        return _ChunkOutcome(
            results=results,
            span=tracer.last_root if trace_enabled else None,
            metrics=registry.dump(),
        )
    finally:
        set_tracer(previous_tracer)
        set_metrics(previous_metrics)


def _run_chunk(
    chunk_index: int, tasks: list[Any]
) -> _ChunkOutcome | _ChunkFailure:
    """Pool-worker entry point: run one chunk against the shared state."""
    state = _SHARED
    if state is None:  # pragma: no cover - defends against pool misuse
        raise ParallelError("worker has no shared state; pool misconfigured")
    return _execute_chunk(
        state.fn, state.payload, chunk_index, tasks, state.trace_enabled
    )


class Executor:
    """The execution contract shared by the inline and pool executors."""

    #: How many tasks may run concurrently (1 for inline).
    workers: int = 1

    def map(
        self, fn: TaskFn, tasks: Sequence[Any], payload: Any = None
    ) -> list[Any]:
        raise NotImplementedError


class InlineExecutor(Executor):
    """Serial execution in the calling process — the parity baseline.

    No pickling, no observability indirection: spans and counters flow
    into the caller's tracer/registry exactly as a direct call would.
    """

    workers = 1

    def map(
        self, fn: TaskFn, tasks: Sequence[Any], payload: Any = None
    ) -> list[Any]:
        return [fn(payload, task) for task in tasks]

    def __repr__(self) -> str:
        return "InlineExecutor()"


class ParallelExecutor(Executor):
    """Fan tasks out over a process pool, deterministically.

    Parameters
    ----------
    workers:
        Pool size (>= 1).  ``workers=1`` degrades to inline execution —
        same results, no pool, within the serial-overhead budget.
    chunk_size:
        Tasks per chunk; ``None`` lets the planner pick (several chunks
        per worker).  Callers whose tasks are already coarse slices pass
        ``chunk_size=1``.
    timeout:
        Overall deadline in seconds for one :meth:`map` call; blowing it
        raises :class:`~repro.errors.WorkerTimeoutError` naming a
        pending task.
    start_method:
        Force a multiprocessing start method; default prefers ``fork``
        (shared payload) and falls back to the platform default.
    """

    def __init__(
        self,
        workers: int,
        *,
        chunk_size: int | None = None,
        timeout: float | None = None,
        start_method: str | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if timeout is not None and timeout <= 0:
            raise ConfigurationError(f"timeout must be positive, got {timeout}")
        available = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in available else available[0]
        elif start_method not in available:
            raise ConfigurationError(
                f"start method {start_method!r} unavailable; "
                f"choose one of {available!r}"
            )
        self.workers = workers
        self.chunk_size = chunk_size
        self.timeout = timeout
        self.start_method = start_method

    def __repr__(self) -> str:
        return (
            f"ParallelExecutor(workers={self.workers}, "
            f"start_method={self.start_method!r})"
        )

    # ------------------------------------------------------------------
    # The fan-out
    # ------------------------------------------------------------------

    def map(
        self, fn: TaskFn, tasks: Sequence[Any], payload: Any = None
    ) -> list[Any]:
        tasks = list(tasks)
        metrics = get_metrics()
        metrics.inc("parallel.maps")
        if not tasks:
            return []
        if self.workers == 1 or _IN_WORKER:
            # Nested fan-outs (a worker calling into a parallel entry
            # point) and single-worker pools run inline: bit-identical
            # results without a redundant pool.  GT007 is enforced at
            # the external submission sites; this is the executor's own
            # trampoline, where `fn` has already been validated.
            return InlineExecutor().map(fn, tasks, payload)  # lint: ignore[GT007]
        chunks = plan_chunks(len(tasks), self.workers, self.chunk_size)
        metrics.inc("parallel.chunks", len(chunks))
        metrics.inc("parallel.tasks_dispatched", len(tasks))
        outcomes = self._dispatch(chunks, tasks, fn, payload)
        results: dict[int, list[Any]] = {}
        tracer = get_tracer()
        for chunk in chunks:
            outcome = outcomes[chunk.index]
            metrics.merge(outcome.metrics)
            if outcome.span is not None and tracer.enabled:
                tracer.attach(outcome.span)
            results[chunk.index] = outcome.results
        metrics.inc("parallel.tasks_completed", len(tasks))
        return assemble(chunks, results)

    def _dispatch(
        self,
        chunks: Sequence[Chunk],
        tasks: Sequence[Any],
        fn: TaskFn,
        payload: Any,
    ) -> dict[int, _ChunkOutcome]:
        """Run every chunk on the pool; gather by chunk index.

        Futures are resolved in chunk order under one shared deadline —
        completion order cannot influence the assembled results (the
        scheduler tests simulate adversarial completion orders through a
        fake dispatch).
        """
        # Sanctioned fork-COW channel (see _init_worker): published once
        # before the pool forks, cleared once every worker has forked.
        # The publish lock makes the channel safe under concurrent map
        # calls from different threads: pool workers fork lazily during
        # submission, so publish + create + submit must be atomic or a
        # sibling thread's pool could fork while *this* payload is the
        # one published.  Only submission serializes; chunk execution
        # and result gathering overlap across threads.
        global _SHARED  # lint: ignore[GT009]
        state = _SharedState(fn, payload, get_tracer().enabled)
        fork = self.start_method == "fork"
        deadline = None if self.timeout is None else time.monotonic() + self.timeout
        outcomes: dict[int, _ChunkOutcome] = {}
        with _PUBLISH_LOCK:
            _SHARED = state  # lint: ignore[GT009]
            try:
                pool = ProcessPoolExecutor(
                    max_workers=min(self.workers, len(chunks)),
                    mp_context=multiprocessing.get_context(self.start_method),
                    initializer=_init_worker,
                    initargs=(None if fork else state,),
                )
                futures = [
                    (chunk, pool.submit(_run_chunk, chunk.index, _slice(tasks, chunk)))
                    for chunk in chunks
                ]
            finally:
                _SHARED = None  # lint: ignore[GT009]
        try:
            for chunk, future in futures:
                remaining = (
                    None if deadline is None else max(0.0, deadline - time.monotonic())
                )
                try:
                    outcome = future.result(remaining)
                except _FuturesTimeout:
                    get_metrics().inc("parallel.tasks_failed", len(chunk))
                    self._kill(pool)
                    raise WorkerTimeoutError(
                        f"{chunk} missed the {self.timeout}s deadline",
                        task=tasks[chunk.start],
                    ) from None
                except BrokenProcessPool as exc:
                    get_metrics().inc("parallel.tasks_failed", len(chunk))
                    raise WorkerCrashError(
                        f"worker died while running {chunk}: {exc}",
                        task=tasks[chunk.start],
                    ) from exc
                if isinstance(outcome, _ChunkFailure):
                    get_metrics().inc("parallel.tasks_failed")
                    get_metrics().merge(outcome.metrics)
                    if isinstance(outcome.exception, GraphTempoError):
                        # Domain failures keep their taxonomy type so
                        # parallel and inline runs fail identically.
                        raise outcome.exception
                    raise ParallelError(
                        f"task {outcome.task!r} raised "
                        f"{outcome.type_name}: {outcome.message}",
                        task=outcome.task,
                    )
                outcomes[chunk.index] = outcome
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return outcomes

    @staticmethod
    def _kill(pool: ProcessPoolExecutor) -> None:
        """Best-effort termination of workers still running after a
        timeout, so a hung task cannot outlive the failed fan-out."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # pragma: no cover - platform dependent
                pass


def _slice(tasks: Sequence[Any], chunk: Chunk) -> list[Any]:
    return list(tasks[chunk.start : chunk.stop])
