"""Aggregate totals as a delta-maintained streaming view.

The T-distributivity maintenance (Section 4.3) that used to live inside
:class:`IncrementalStore` directly, repackaged as a
:class:`~repro.streaming.StreamingView` so it rides the same
append/rebuild contract as the evolution and exploration views: per
append, only the new point is aggregated and each running union total
is one pointwise sum.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core import AggregateGraph, TemporalGraph, aggregate
from ..core.updates import SnapshotUpdate
from ..errors import MaterializationError, UnknownLabelError
from ..obs.metrics import get_metrics
from ..streaming.views import StreamingView

__all__ = ["AggregateTotalsView"]


class AggregateTotalsView(StreamingView):
    """Per-point non-distinct union aggregates plus running totals.

    Parameters
    ----------
    tracked:
        Attribute sets whose union(ALL) aggregates are kept current;
        duplicates are rejected.
    """

    def __init__(self, tracked: Sequence[Sequence[str]]) -> None:
        self._tracked = [tuple(attrs) for attrs in tracked]
        if len(set(self._tracked)) != len(self._tracked):
            raise MaterializationError("duplicate tracked attribute sets")
        self._points: dict[tuple[str, ...], list[AggregateGraph]] = {}
        self._totals: dict[tuple[str, ...], AggregateGraph] = {}

    @property
    def tracked(self) -> tuple[tuple[str, ...], ...]:
        return tuple(self._tracked)

    def rebuild(self, graph: TemporalGraph) -> None:
        self._points = {}
        self._totals = {}
        for attrs in self._tracked:
            points = [
                aggregate(graph, list(attrs), distinct=False, times=[t])
                for t in graph.timeline.labels
            ]
            self._points[attrs] = points
            total = points[0]
            for point in points[1:]:
                total = total.combine(point)
            self._totals[attrs] = total

    def extend(self, graph: TemporalGraph, update: SnapshotUpdate) -> None:
        metrics = get_metrics()
        for attrs in self._tracked:
            point = aggregate(
                graph, list(attrs), distinct=False, times=[update.time]
            )
            self._points[attrs].append(point)
            self._totals[attrs] = self._totals[attrs].combine(point)
            metrics.inc("materialize.incremental_updates")

    def timepoint_aggregate(
        self, attributes: Sequence[str], index: int
    ) -> AggregateGraph:
        """The materialized aggregate of the ``index``-th time point.

        ``index`` follows Python sequence semantics: negative values
        count from the end of the timeline (``-1`` is the latest
        point).  Out-of-range indices — in either direction — raise
        :class:`~repro.errors.MaterializationError`.
        """
        points = self._points[self._key(attributes)]
        if not -len(points) <= index < len(points):
            raise MaterializationError(
                f"time-point index {index} out of range for a timeline of "
                f"{len(points)} points (valid: {-len(points)}..{len(points) - 1})"
            )
        return points[index]

    def union_total(self, attributes: Sequence[str]) -> AggregateGraph:
        """The running union(ALL) aggregate over the whole timeline."""
        return self._totals[self._key(attributes)]

    def _key(self, attributes: Sequence[str]) -> tuple[str, ...]:
        key = tuple(attributes)
        if key not in self._points:
            raise UnknownLabelError(
                f"attribute set {key!r} is not tracked; tracked: {self._tracked!r}"
            )
        return key
