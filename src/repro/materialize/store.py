"""Partial materialization of aggregate graphs (Section 4.3).

Materializing every (attribute set x interval) aggregate is unrealistic;
the paper instead precomputes a small base and derives the rest:

* **T-distributive** roll-up over time: the *non-distinct* (ALL) union
  aggregate of an interval is the pointwise weight sum of the per-time-
  point aggregates.  (Distinct aggregates are *not* T-distributive —
  distinct nodes cannot be identified across per-point summaries — and
  are rejected.)
* **D-distributive** roll-up over attributes: the aggregate on a subset
  of attributes is derived from the superset aggregate by grouping the
  projected tuples and summing weights
  (:meth:`repro.core.AggregateGraph.rollup`).  For DIST aggregates this
  is exact per time point (each node carries one tuple at one time
  point); for ALL aggregates it is exact over any interval.

:class:`MaterializedStore` owns the per-time-point cache and exposes the
derivations; the Figure 10/11 benchmarks compare them against
from-scratch aggregation.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass

from ..core import AggregateGraph, TemporalGraph, aggregate, ordered_times
from ..errors import MaterializationError
from ..obs.metrics import get_metrics
from ..obs.trace import trace_span

__all__ = ["MaterializedStore", "StoreStats"]


@dataclass
class StoreStats:
    """Cache behaviour counters for one store.

    Every increment is mirrored into the process-wide metrics registry
    (``materialize.cache_hits`` / ``cache_misses`` / ``derivations``), so
    ``repro profile`` reports see cache behaviour without holding a
    reference to the store.
    """

    hits: int = 0
    misses: int = 0
    derived: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def record_hit(self) -> None:
        self.hits += 1
        get_metrics().inc("materialize.cache_hits")

    def record_miss(self) -> None:
        self.misses += 1
        get_metrics().inc("materialize.cache_misses")

    def record_derivation(self) -> None:
        self.derived += 1
        get_metrics().inc("materialize.derivations")


class MaterializedStore:
    """A cache of per-time-point aggregates with derivation rules.

    Parameters
    ----------
    graph:
        The temporal graph whose aggregates are materialized.

    The cache key is ``(time point, attribute tuple, distinct)``.  Use
    :meth:`precompute` to warm the cache up front (what the paper calls
    "precomputing aggregations on the unit of time") or let lookups fill
    it lazily.
    """

    def __init__(self, graph: TemporalGraph) -> None:
        self._graph = graph
        self._cache: dict[
            tuple[Hashable, tuple[str, ...], bool], AggregateGraph
        ] = {}
        self.stats = StoreStats()

    @property
    def graph(self) -> TemporalGraph:
        return self._graph

    def __len__(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------
    # Base materialization
    # ------------------------------------------------------------------

    def precompute(
        self,
        attributes: Sequence[str],
        distinct: bool = False,
        times: Iterable[Hashable] | None = None,
    ) -> None:
        """Materialize the aggregate of every time point up front."""
        for time in times if times is not None else self._graph.timeline.labels:
            self.timepoint_aggregate(attributes, time, distinct=distinct)

    def timepoint_aggregate(
        self,
        attributes: Sequence[str],
        time: Hashable,
        distinct: bool = False,
    ) -> AggregateGraph:
        """The aggregate of a single time point, cached."""
        key = (time, tuple(attributes), distinct)
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.record_hit()
            return cached
        self.stats.record_miss()
        with trace_span("materialize.timepoint", time=time):
            result = aggregate(
                self._graph, attributes, distinct=distinct, times=[time]
            )
        self._cache[key] = result
        return result

    # ------------------------------------------------------------------
    # T-distributive derivation (time roll-up)
    # ------------------------------------------------------------------

    def union_aggregate(
        self,
        attributes: Sequence[str],
        times: Iterable[Hashable],
    ) -> AggregateGraph:
        """The non-distinct union aggregate of an interval, derived by
        summing materialized per-point aggregates (Section 4.3).

        Equivalent to ``aggregate(union(graph, times), attributes,
        distinct=False)`` but touches only the cache — this equality is
        what the Figure 10 benchmark (and its correctness test) checks.
        To keep it an *equality*, ``times`` is normalized through
        :func:`repro.core.ordered_times` first: labels are validated
        against the timeline and deduplicated (the union operator treats
        its inputs as sets, so a repeated label must not be summed
        twice).
        """
        window = ordered_times(self._graph, times)
        if not window:
            raise MaterializationError("union_aggregate requires at least one time point")
        with trace_span("materialize.union_aggregate", n_times=len(window)):
            total: AggregateGraph | None = None
            for time in window:
                point = self.timepoint_aggregate(attributes, time, distinct=False)
                total = point if total is None else total.combine(point)
                self.stats.record_derivation()
            assert total is not None
            return total

    # ------------------------------------------------------------------
    # D-distributive derivation (attribute roll-up)
    # ------------------------------------------------------------------

    def rollup_aggregate(
        self,
        superset: Sequence[str],
        subset: Sequence[str],
        time: Hashable,
        distinct: bool = True,
    ) -> AggregateGraph:
        """The aggregate on ``subset`` derived from the materialized
        aggregate on ``superset`` at one time point (Section 4.3, the
        Figure 11 experiment)."""
        base = self.timepoint_aggregate(superset, time, distinct=distinct)
        self.stats.record_derivation()
        with trace_span("materialize.rollup"):
            return base.rollup(subset)
