"""Incremental maintenance of materialized aggregates.

T-distributivity (Section 4.3) makes non-distinct union aggregates
maintainable in O(new time point): when a snapshot is appended, only the
new point's aggregate must be computed, and the running union total is
its pointwise sum with the previous total.  :class:`IncrementalStore`
packages this as a thin wrapper over the streaming substrate: a
:class:`~repro.streaming.StreamingStore` owns the growing, versioned
graph, and an :class:`~repro.materialize.streaming.AggregateTotalsView`
registered on it keeps the per-point aggregates and running totals
current on every append.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core import AggregateGraph, TemporalGraph
from ..core.updates import SnapshotUpdate, split_history
from ..obs.metrics import get_metrics
from ..obs.trace import trace_span
from ..streaming.store import StreamingStore
from .streaming import AggregateTotalsView

__all__ = ["IncrementalStore"]


class IncrementalStore:
    """Streaming materialization over a growing temporal graph.

    Parameters
    ----------
    graph:
        The initial temporal graph.
    tracked:
        Attribute sets whose non-distinct union aggregates are kept
        current.  Each gets a per-time-point aggregate and a running
        total over the whole timeline.
    """

    def __init__(
        self, graph: TemporalGraph, tracked: Sequence[Sequence[str]]
    ) -> None:
        self._view = AggregateTotalsView(tracked)
        self._store = StreamingStore(graph, views=[self._view])

    @classmethod
    def from_history(
        cls, graph: TemporalGraph, tracked: Sequence[Sequence[str]]
    ) -> "IncrementalStore":
        """A store built by replaying the graph's own history point by
        point: first time point as the seed, every later point as an
        :meth:`append`.

        Because appends only aggregate the new point (T-distributivity),
        the resulting totals must equal those of a store built over the
        whole graph at once — the replay identity the differential fuzz
        oracle checks.
        """
        initial, updates = split_history(graph)
        store = cls(initial, tracked)
        for update in updates:
            store.append(update)
        return store

    @property
    def graph(self) -> TemporalGraph:
        """The current graph (replaced, never mutated, on append)."""
        return self._store.graph

    @property
    def versioned(self) -> StreamingStore:
        """The underlying versioned store (pinnable reads, hooks)."""
        return self._store

    @property
    def tracked(self) -> tuple[tuple[str, ...], ...]:
        return self._view.tracked

    def append(self, update: SnapshotUpdate) -> TemporalGraph:
        """Extend the graph by one snapshot and refresh all aggregates.

        Only the new time point is aggregated; running totals are
        updated by one pointwise sum per tracked attribute set.
        Returns the new graph.
        """
        with trace_span("materialize.append", time=update.time):
            get_metrics().inc("materialize.appends")
            self._store.append_snapshot(update)
        return self._store.graph

    def timepoint_aggregate(
        self, attributes: Sequence[str], index: int
    ) -> AggregateGraph:
        """The materialized aggregate of the ``index``-th time point.

        ``index`` follows Python sequence semantics: ``-1`` is the
        latest point, ``-len(timeline)`` the first.  Out-of-range
        indices raise :class:`~repro.errors.MaterializationError` (they
        used to leak a bare ``IndexError``).
        """
        return self._view.timepoint_aggregate(attributes, index)

    def union_total(self, attributes: Sequence[str]) -> AggregateGraph:
        """The running union(ALL) aggregate over the whole timeline."""
        return self._view.union_total(attributes)
