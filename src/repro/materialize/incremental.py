"""Incremental maintenance of materialized aggregates.

T-distributivity (Section 4.3) makes non-distinct union aggregates
maintainable in O(new time point): when a snapshot is appended, only the
new point's aggregate must be computed, and the running union total is
its pointwise sum with the previous total.  :class:`IncrementalStore`
packages this: it owns the growing graph, per-point aggregates for the
attribute sets it tracks, and the running totals, updating them all on
:meth:`append`.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core import AggregateGraph, TemporalGraph, aggregate
from ..core.updates import SnapshotUpdate, append_snapshot, split_history
from ..errors import MaterializationError, UnknownLabelError
from ..obs.metrics import get_metrics
from ..obs.trace import trace_span

__all__ = ["IncrementalStore"]


class IncrementalStore:
    """Streaming materialization over a growing temporal graph.

    Parameters
    ----------
    graph:
        The initial temporal graph.
    tracked:
        Attribute sets whose non-distinct union aggregates are kept
        current.  Each gets a per-time-point aggregate and a running
        total over the whole timeline.
    """

    def __init__(
        self, graph: TemporalGraph, tracked: Sequence[Sequence[str]]
    ) -> None:
        if not graph.timeline.labels:
            # Timeline itself rejects empty label sets, but graph-like
            # objects from other substrates may not; fail from the GT003
            # taxonomy instead of a bare IndexError on the first total.
            raise MaterializationError(
                "cannot build an IncrementalStore over an empty timeline"
            )
        self._graph = graph
        self._tracked = [tuple(attrs) for attrs in tracked]
        if len(set(self._tracked)) != len(self._tracked):
            raise MaterializationError("duplicate tracked attribute sets")
        self._points: dict[tuple[str, ...], list[AggregateGraph]] = {}
        self._totals: dict[tuple[str, ...], AggregateGraph] = {}
        for attrs in self._tracked:
            points = [
                aggregate(graph, list(attrs), distinct=False, times=[t])
                for t in graph.timeline.labels
            ]
            self._points[attrs] = points
            total = points[0]
            for point in points[1:]:
                total = total.combine(point)
            self._totals[attrs] = total

    @classmethod
    def from_history(
        cls, graph: TemporalGraph, tracked: Sequence[Sequence[str]]
    ) -> "IncrementalStore":
        """A store built by replaying the graph's own history point by
        point: first time point as the seed, every later point as an
        :meth:`append`.

        Because appends only aggregate the new point (T-distributivity),
        the resulting totals must equal those of a store built over the
        whole graph at once — the replay identity the differential fuzz
        oracle checks.
        """
        initial, updates = split_history(graph)
        store = cls(initial, tracked)
        for update in updates:
            store.append(update)
        return store

    @property
    def graph(self) -> TemporalGraph:
        """The current graph (replaced, never mutated, on append)."""
        return self._graph

    @property
    def tracked(self) -> tuple[tuple[str, ...], ...]:
        return tuple(self._tracked)

    def append(self, update: SnapshotUpdate) -> TemporalGraph:
        """Extend the graph by one snapshot and refresh all aggregates.

        Only the new time point is aggregated; running totals are
        updated by one pointwise sum per tracked attribute set.
        Returns the new graph.
        """
        with trace_span("materialize.append", time=update.time):
            self._graph = append_snapshot(self._graph, update)
            metrics = get_metrics()
            metrics.inc("materialize.appends")
            for attrs in self._tracked:
                point = aggregate(
                    self._graph, list(attrs), distinct=False, times=[update.time]
                )
                self._points[attrs].append(point)
                self._totals[attrs] = self._totals[attrs].combine(point)
                metrics.inc("materialize.incremental_updates")
        return self._graph

    def timepoint_aggregate(
        self, attributes: Sequence[str], index: int
    ) -> AggregateGraph:
        """The materialized aggregate of the ``index``-th time point."""
        return self._points[self._key(attributes)][index]

    def union_total(self, attributes: Sequence[str]) -> AggregateGraph:
        """The running union(ALL) aggregate over the whole timeline."""
        return self._totals[self._key(attributes)]

    def _key(self, attributes: Sequence[str]) -> tuple[str, ...]:
        key = tuple(attributes)
        if key not in self._points:
            raise UnknownLabelError(
                f"attribute set {key!r} is not tracked; tracked: {self._tracked!r}"
            )
        return key
