"""Partial materialization and reuse of aggregate graphs (Section 4.3)."""

from .incremental import IncrementalStore
from .store import MaterializedStore, StoreStats
from .streaming import AggregateTotalsView

__all__ = [
    "MaterializedStore",
    "StoreStats",
    "IncrementalStore",
    "AggregateTotalsView",
]
