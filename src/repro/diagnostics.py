"""Consistency diagnostics for temporal attributed graphs.

Graphs built by the library's generators satisfy every invariant by
construction, but graphs loaded from CSV (:func:`repro.datasets.load_graph`)
or converted from external snapshots skip validation for speed.  This
module audits a graph and reports findings at three severities:

* ``error`` — the graph violates a model invariant (operators may
  silently return wrong results): dangling edges, edges active while an
  endpoint is absent, attribute values on absent appearances;
* ``warning`` — legal but suspicious: empty time points, never-present
  entities, missing attribute values on present appearances, self loops;
* ``info`` — descriptive statistics: attribute domain sizes, density.

``check_graph`` returns structured findings; ``format_findings`` renders
them for terminals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .core import TemporalGraph
from .errors import ValidationError

__all__ = ["Finding", "check_graph", "format_findings"]

_SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One diagnostic result."""

    severity: str  # error | warning | info
    code: str      # stable machine-readable identifier
    message: str

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise ValidationError(f"unknown severity {self.severity!r}")

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


def _sample(items: list, limit: int = 3) -> str:
    shown = ", ".join(repr(i) for i in items[:limit])
    if len(items) > limit:
        shown += f", ... ({len(items) - limit} more)"
    return shown


def check_graph(graph: TemporalGraph) -> list[Finding]:
    """Audit one graph; returns findings ordered errors-first."""
    errors: list[Finding] = []
    warnings: list[Finding] = []
    infos: list[Finding] = []

    node_pos = {n: i for i, n in enumerate(graph.node_presence.row_labels)}
    node_values = graph.node_presence.values.astype(bool)
    edge_values = graph.edge_presence.values.astype(bool)

    # --- errors ---------------------------------------------------------
    # The dangling scan goes through the storage backend's adjacency
    # index, so it audits whichever physical layout the graph uses and
    # the finding names that backend.
    backend = graph.storage
    dangling = [
        edge
        for edge, u_row, v_row in backend.adjacency_scan()
        if u_row < 0 or v_row < 0
    ]
    if dangling:
        errors.append(
            Finding(
                "error",
                "dangling-edge",
                f"edges reference unknown nodes (storage backend "
                f"{backend.name!r}): {_sample(dangling)}",
            )
        )

    # Set membership: the list scan was O(|E| * |dangling|) on graphs
    # where most edges dangle (e.g. a node file that failed to load).
    dangling_set = set(dangling)
    orphaned_activity = []
    for row, edge in enumerate(graph.edge_presence.row_labels):
        if edge in dangling_set:
            continue
        u, v = edge  # type: ignore[misc]
        bad = edge_values[row] & ~(node_values[node_pos[u]] & node_values[node_pos[v]])
        if bad.any():
            orphaned_activity.append(edge)
    if orphaned_activity:
        errors.append(
            Finding(
                "error",
                "edge-without-endpoints",
                "edges active at times an endpoint is absent: "
                f"{_sample(orphaned_activity)}",
            )
        )

    for name, frame in graph.varying_attrs.items():
        values = frame.values
        has_value = np.frompyfunc(lambda v: v is not None, 1, 1)(values).astype(bool)
        ghost_rows = [
            node
            for node, row in zip(frame.row_labels, has_value & ~node_values)
            if row.any()
        ]
        if ghost_rows:
            errors.append(
                Finding(
                    "error",
                    "value-on-absent-appearance",
                    f"attribute {name!r} has values where nodes are absent: "
                    f"{_sample(ghost_rows)}",
                )
            )
        holes = [
            node
            for node, row in zip(frame.row_labels, node_values & ~has_value)
            if row.any()
        ]
        if holes:
            warnings.append(
                Finding(
                    "warning",
                    "missing-attribute-value",
                    f"attribute {name!r} is missing on present appearances: "
                    f"{_sample(holes)}",
                )
            )

    # --- warnings --------------------------------------------------------
    empty_times = [
        t for t in graph.timeline.labels if graph.n_nodes_at(t) == 0
    ]
    if empty_times:
        warnings.append(
            Finding(
                "warning",
                "empty-time-point",
                f"time points with no nodes: {_sample(empty_times)}",
            )
        )
    ghost_nodes = [
        n for n, row in zip(graph.node_presence.row_labels, node_values)
        if not row.any()
    ]
    if ghost_nodes:
        warnings.append(
            Finding(
                "warning",
                "never-present-node",
                f"nodes never present at any time: {_sample(ghost_nodes)}",
            )
        )
    ghost_edges = [
        e for e, row in zip(graph.edge_presence.row_labels, edge_values)
        if not row.any()
    ]
    if ghost_edges:
        warnings.append(
            Finding(
                "warning",
                "never-present-edge",
                f"edges never present at any time: {_sample(ghost_edges)}",
            )
        )
    self_loops = [
        e
        for e in graph.edge_presence.row_labels
        if isinstance(e, tuple) and len(e) == 2 and e[0] == e[1]
    ]
    if self_loops:
        warnings.append(
            Finding(
                "warning",
                "self-loop",
                f"self loops present: {_sample(self_loops)}",
            )
        )
    missing_static = [
        (node, name)
        for name in graph.static_attribute_names
        for node, value in zip(
            graph.static_attrs.row_labels, graph.static_attrs.column(name)
        )
        if value is None
    ]
    if missing_static:
        warnings.append(
            Finding(
                "warning",
                "missing-static-value",
                f"static attribute values missing: {_sample(missing_static)}",
            )
        )

    # --- info -------------------------------------------------------------
    for name in graph.static_attribute_names:
        domain = {
            v for v in graph.static_attrs.column(name) if v is not None
        }
        infos.append(
            Finding(
                "info",
                "attribute-domain",
                f"static attribute {name!r} has {len(domain)} distinct values",
            )
        )
    for name, frame in graph.varying_attrs.items():
        domain = {v for v in frame.values.ravel() if v is not None}
        infos.append(
            Finding(
                "info",
                "attribute-domain",
                f"time-varying attribute {name!r} has {len(domain)} distinct values",
            )
        )
    appearances = int(node_values.sum())
    edge_appearances = int(edge_values.sum())
    infos.append(
        Finding(
            "info",
            "size",
            f"{graph.n_nodes} nodes / {graph.n_edges} edges over "
            f"{len(graph.timeline)} time points; {appearances} node and "
            f"{edge_appearances} edge appearances",
        )
    )
    return errors + warnings + infos


def format_findings(findings: list[Finding]) -> str:
    """Render findings, one per line, errors first."""
    if not findings:
        return "no findings"
    return "\n".join(str(f) for f in findings)
