"""Figure 5: aggregation time per attribute (set) on single time points.

Paper series: per-attribute and combined-attribute aggregation time at
each time point, for DBLP (gender, publications, both) and MovieLens
(gender, rating, pairs, all four attributes).  Here each (dataset,
attribute set, representative time point) is one benchmark row; the
expected shape is: static < time-varying < combinations, and MovieLens's
August above the other months.
"""

import pytest

from repro.core import aggregate

DBLP_ATTRS = [("gender",), ("publications",), ("gender", "publications")]
ML_ATTRS = [
    ("gender",),
    ("rating",),
    ("gender", "rating"),
    ("gender", "age", "occupation", "rating"),
]


@pytest.mark.parametrize("attrs", DBLP_ATTRS, ids=lambda a: "+".join(a))
@pytest.mark.parametrize("year", [2000, 2010, 2020])
def test_fig5a_dblp(benchmark, dblp, attrs, year):
    result = benchmark(aggregate, dblp, list(attrs), True, [year])
    assert result.total_node_weight() == dblp.n_nodes_at(year)


@pytest.mark.parametrize("attrs", ML_ATTRS, ids=lambda a: "+".join(a))
@pytest.mark.parametrize("month", ["May", "Aug", "Oct"])
def test_fig5b_movielens(benchmark, movielens, attrs, month):
    result = benchmark(aggregate, movielens, list(attrs), True, [month])
    assert result.total_node_weight() == movielens.n_nodes_at(month)
