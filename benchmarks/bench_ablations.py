"""Ablation benchmarks for the design choices DESIGN.md calls out.

* **Monotonicity pruning** (Section 3.2): the pruned U-/I-Explore vs.
  the exhaustive oracle over the same candidate space.
* **Static-attribute fast path** (Section 4.2): the direct grouping
  implementation vs. running the general unpivot/dedup pipeline on a
  static attribute.
* **Materialization granularity** (Section 4.3): deriving a union(ALL)
  aggregate from per-point aggregates vs. recomputing, at two interval
  lengths (the crossover the partial-materialization argument rests on).
"""

import pytest

from repro.core import aggregate, union
from repro.core.aggregation import _aggregate_general, _aggregate_static_fast
from repro.exploration import (
    EventType,
    ExtendSide,
    Goal,
    exhaustive_explore,
    explore,
)
from repro.materialize import MaterializedStore


class TestPruningAblation:
    @pytest.mark.parametrize("strategy", ["pruned", "exhaustive"])
    def test_stability_minimal(self, benchmark, dblp, strategy):
        fn = explore if strategy == "pruned" else exhaustive_explore
        result = benchmark(
            fn, dblp, EventType.STABILITY, Goal.MINIMAL, ExtendSide.NEW, 5
        )
        assert result.evaluations > 0

    @pytest.mark.parametrize("strategy", ["pruned", "exhaustive"])
    def test_growth_maximal(self, benchmark, dblp, strategy):
        fn = explore if strategy == "pruned" else exhaustive_explore
        result = benchmark(
            fn, dblp, EventType.GROWTH, Goal.MAXIMAL, ExtendSide.OLD, 5
        )
        assert result.evaluations > 0

    def test_pruning_saves_evaluations(self, dblp):
        pruned = explore(
            dblp, EventType.STABILITY, Goal.MINIMAL, ExtendSide.NEW, 5
        )
        oracle = exhaustive_explore(
            dblp, EventType.STABILITY, Goal.MINIMAL, ExtendSide.NEW, 5
        )
        assert pruned.evaluations < oracle.evaluations
        assert pruned.pairs == oracle.pairs


class TestStaticFastPathAblation:
    @pytest.mark.parametrize("path", ["fast", "general"])
    def test_union_window_gender(self, benchmark, dblp, path):
        times = dblp.timeline.labels
        fn = _aggregate_static_fast if path == "fast" else _aggregate_general
        result = benchmark(fn, dblp, ["gender"], times, True)
        assert result.total_node_weight() > 0

    def test_paths_agree(self, dblp):
        times = dblp.timeline.labels[:8]
        fast = _aggregate_static_fast(dblp, ["gender"], times, False)
        general = _aggregate_general(dblp, ["gender"], times, False)
        assert dict(fast.node_weights) == dict(general.node_weights)
        assert dict(fast.edge_weights) == dict(general.edge_weights)


class TestMaterializationGranularity:
    @pytest.mark.parametrize("length", [3, 21])
    @pytest.mark.parametrize("source", ["scratch", "materialized"])
    def test_union_all(self, benchmark, dblp, source, length):
        span = dblp.timeline.labels[:length]
        if source == "scratch":
            benchmark(
                lambda: aggregate(union(dblp, span), ["gender"], distinct=False)
            )
        else:
            store = MaterializedStore(dblp)
            store.precompute(["gender"], distinct=False, times=span)
            benchmark(store.union_aggregate, ["gender"], span)


class TestVectorizedEngineAblation:
    """Algorithm-2 transcription vs. the vectorized production engine —
    same results (asserted in tests), different constants."""

    @pytest.mark.parametrize("engine", ["algorithm2", "vectorized"])
    @pytest.mark.parametrize("attr", ["gender", "publications"])
    def test_union_window(self, benchmark, dblp, engine, attr):
        from repro.core import aggregate_fast

        window = dblp.timeline.labels
        sub = union(dblp, window)
        fn = aggregate if engine == "algorithm2" else aggregate_fast
        result = benchmark(fn, sub, [attr], False)
        assert result.total_node_weight() > 0

    @pytest.mark.parametrize("engine", ["algorithm2", "vectorized"])
    def test_movielens_varying(self, benchmark, movielens, engine):
        from repro.core import aggregate_fast

        sub = union(movielens, movielens.timeline.labels)
        fn = aggregate if engine == "algorithm2" else aggregate_fast
        result = benchmark(fn, sub, ["rating"], True)
        assert result.total_node_weight() > 0
