"""Figure 12: aggregate evolution graphs of high-activity DBLP authors.

Benchmarks the full Fig. 12 pipeline — appearance filtering
(#publications > 4), then evolution aggregation on gender — for the two
decade windows the paper shows (2010 vs the 2000s, 2020 vs the 2010s),
and asserts the qualitative shape: node stability dominates growth
among active authors while edges are dominated by turnover.
"""

import pytest

from repro.core import (
    aggregate_evolution,
    attribute_predicate,
    filter_appearances,
)

HIGH_ACTIVITY = attribute_predicate(
    publications=lambda p: p is not None and p > 4
)


@pytest.fixture(scope="module")
def active_dblp(dblp):
    return filter_appearances(dblp, HIGH_ACTIVITY)


@pytest.mark.parametrize("window", ["2000s->2010", "2010s->2020"])
def test_fig12_evolution_aggregation(benchmark, active_dblp, window):
    years = active_dblp.timeline.labels
    if window == "2000s->2010":
        old, new = years[:10], [years[10]]
    else:
        old, new = years[10:20], [years[20]]
    evo = benchmark(aggregate_evolution, active_dblp, old, new, ["gender"])
    totals = evo.totals()
    edge_totals = evo.edge_totals()
    # Paper shape: active authors show real stability; collaborations
    # between them are dominated by growth + shrinkage (turnover).
    assert totals.stability > 0
    assert edge_totals.growth + edge_totals.shrinkage >= edge_totals.stability


def test_fig12_filter_cost(benchmark, dblp):
    """The appearance-filter preprocessing step, timed separately."""
    filtered = benchmark(filter_appearances, dblp, HIGH_ACTIVITY)
    assert filtered.n_nodes < dblp.n_nodes
