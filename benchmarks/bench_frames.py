"""Micro-benchmarks for the labeled-array substrate.

The figure-level costs all decompose into these primitives (presence
mask reductions, row selection, unpivot, dedup, group-count, hash join);
tracking them separately makes substrate regressions visible before
they smear into every figure.
"""

import numpy as np
import pytest

from repro.frames import LabeledFrame, Table, unpivot

N_ROWS = 20_000
N_COLS = 21


@pytest.fixture(scope="module")
def presence():
    rng = np.random.default_rng(0)
    values = (rng.random((N_ROWS, N_COLS)) < 0.3).astype(np.uint8)
    return LabeledFrame(range(N_ROWS), range(N_COLS), values)


@pytest.fixture(scope="module")
def long_table(presence):
    rng = np.random.default_rng(1)
    rows = [
        (int(i), int(t), int(v))
        for i, t, v in zip(
            rng.integers(0, N_ROWS, 50_000),
            rng.integers(0, N_COLS, 50_000),
            rng.integers(1, 15, 50_000),
        )
    ]
    return Table(["id", "t", "value"], rows)


class TestFramePrimitives:
    def test_any_mask(self, benchmark, presence):
        result = benchmark(presence.any_mask, list(range(10)))
        assert result.shape == (N_ROWS,)

    def test_all_mask(self, benchmark, presence):
        benchmark(presence.all_mask, list(range(5)))

    def test_count_nonzero_by_row(self, benchmark, presence):
        counts = benchmark(presence.count_nonzero_by_row)
        assert len(counts) == N_ROWS

    def test_select_rows(self, benchmark, presence):
        wanted = list(range(0, N_ROWS, 3))
        sub = benchmark(presence.select_rows, wanted)
        assert sub.n_rows == len(wanted)

    def test_restrict_cols(self, benchmark, presence):
        benchmark(presence.restrict_cols, list(range(0, N_COLS, 2)))

    def test_unpivot(self, benchmark, presence):
        long = benchmark(unpivot, presence)
        assert len(long) == N_ROWS * N_COLS


class TestTablePrimitives:
    def test_deduplicate(self, benchmark, long_table):
        deduped = benchmark(long_table.deduplicate, ["id", "value"])
        assert len(deduped) <= len(long_table)

    def test_groupby_count(self, benchmark, long_table):
        counts = benchmark(long_table.groupby_count, ["value"])
        assert sum(counts.values()) == len(long_table)

    def test_groupby_sum(self, benchmark, long_table):
        benchmark(long_table.groupby_sum, ["id"], "value")

    def test_join(self, benchmark, long_table):
        right = Table(
            ["id", "gender"],
            [(i, "m" if i % 5 else "f") for i in range(N_ROWS)],
        )
        joined = benchmark(long_table.join, right, ["id"])
        assert len(joined) == len(long_table)

    def test_order_by(self, benchmark, long_table):
        benchmark(long_table.order_by, ["value", "id"])


class TestQueryLanguage:
    def test_parse(self, benchmark):
        from repro.query import parse

        benchmark(
            parse,
            "explore growth minimal extend new k 10 on edges by gender key f -> m",
        )

    def test_run_query_aggregate(self, benchmark, dblp):
        from repro.query import run_query

        result = benchmark(
            run_query, dblp, "aggregate gender all over union [2000..2005]"
        )
        assert result.total_node_weight() > 0
