"""Figure 6: union + aggregation (DIST and ALL) over extending intervals.

Paper series: total time of the union operator plus aggregation, per
attribute type and aggregation mode, as the interval [t0 .. t0+L]
extends.  Expected shape: time grows with interval length, time-varying
attributes cost several times more than static ones, and DIST vs ALL
differ more for time-varying attributes.
"""

import pytest

from repro.core import aggregate, union


def _span(graph, length):
    return graph.timeline.labels[:length]


DBLP_LENGTHS = [2, 6, 11, 21]
ML_LENGTHS = [2, 4, 6]


@pytest.mark.parametrize("distinct", [True, False], ids=["DIST", "ALL"])
@pytest.mark.parametrize("attr", ["gender", "publications"])
@pytest.mark.parametrize("length", DBLP_LENGTHS)
def test_fig6_dblp(benchmark, dblp, attr, distinct, length):
    span = _span(dblp, length)

    def run():
        return aggregate(union(dblp, span), [attr], distinct=distinct)

    result = benchmark(run)
    assert result.total_node_weight() > 0


@pytest.mark.parametrize("distinct", [True, False], ids=["DIST", "ALL"])
@pytest.mark.parametrize("attr", ["gender", "rating"])
@pytest.mark.parametrize("length", ML_LENGTHS)
def test_fig6_movielens(benchmark, movielens, attr, distinct, length):
    span = _span(movielens, length)

    def run():
        return aggregate(union(movielens, span), [attr], distinct=distinct)

    result = benchmark(run)
    assert result.total_node_weight() > 0


@pytest.mark.parametrize("length", DBLP_LENGTHS)
def test_fig6_union_operator_only(benchmark, dblp, length):
    """The operator-vs-aggregation time split of Figs. 6b/6c: this is the
    operator half; compare against the combined rows above."""
    span = _span(dblp, length)
    result = benchmark(union, dblp, span)
    assert result.n_nodes > 0
