"""Figure 8: difference T_old(∪) - T_new plus aggregation (deletions).

T_new is the last time point; T_old is an anchored interval extending
under union semantics.  Expected shape: total time grows as T_old
extends (the operator output grows), the operator dominates aggregation
for static attributes, and aggregation dominates for time-varying ones.
"""

import pytest

from repro.core import aggregate, difference

DBLP_LENGTHS = [2, 10, 20]
ML_LENGTHS = [2, 5]


@pytest.mark.parametrize("distinct", [True, False], ids=["DIST", "ALL"])
@pytest.mark.parametrize("attr", ["gender", "publications"])
@pytest.mark.parametrize("length", DBLP_LENGTHS)
def test_fig8_dblp(benchmark, dblp, attr, distinct, length):
    labels = dblp.timeline.labels
    old_span, new_times = labels[:length], (labels[-1],)

    def run():
        return aggregate(
            difference(dblp, old_span, new_times), [attr], distinct=distinct
        )

    benchmark(run)


@pytest.mark.parametrize("attr", ["gender", "rating"])
@pytest.mark.parametrize("length", ML_LENGTHS)
def test_fig8_movielens(benchmark, movielens, attr, length):
    labels = movielens.timeline.labels
    old_span, new_times = labels[:length], (labels[-1],)

    def run():
        return aggregate(
            difference(movielens, old_span, new_times), [attr], distinct=True
        )

    benchmark(run)


@pytest.mark.parametrize("length", DBLP_LENGTHS)
def test_fig8_operator_only(benchmark, dblp, length):
    labels = dblp.timeline.labels
    benchmark(difference, dblp, labels[:length], (labels[-1],))
