"""Benchmarks for the extension subsystems built beyond the paper's core:
cube query routes, the multi-group explorer, timeline coarsening and
incremental maintenance."""

import pytest

from repro.core import (
    SnapshotUpdate,
    TimeHierarchy,
    aggregate,
    coarsen,
    union,
)
from repro.exploration import (
    EventType,
    ExtendSide,
    Goal,
    explore,
    explore_groups,
)
from repro.materialize import IncrementalStore
from repro.olap import TemporalGraphCube


class TestCubeRoutes:
    """The three serving routes of the OLAP cube, on the same query."""

    def test_route_base(self, benchmark, movielens):
        def run():
            cube = TemporalGraphCube(movielens)
            return cube.cuboid(["gender"], times=["Aug"], distinct=True)

        benchmark(run)

    def test_route_attribute_rollup(self, benchmark, movielens):
        cube = TemporalGraphCube(movielens)
        cube.materialize(
            ["gender", "age", "occupation", "rating"], times=["Aug"],
            distinct=True,
        )

        def run():
            cube._cache.pop((("gender",), ("Aug",), True), None)
            return cube.cuboid(["gender"], times=["Aug"], distinct=True)

        benchmark(run)

    def test_route_time_rollup(self, benchmark, movielens):
        cube = TemporalGraphCube(movielens)
        cube.materialize(["gender"], per_time_point=True, distinct=False)
        window = movielens.timeline.labels

        def run():
            cube._cache.pop((("gender",), window, False), None)
            return cube.cuboid(["gender"], times=window, distinct=False)

        benchmark(run)


class TestGroupSweep:
    """One multi-group walk vs. one explore() per group."""

    def test_group_sweep(self, benchmark, dblp):
        result = benchmark(
            explore_groups, dblp, EventType.GROWTH, Goal.MINIMAL,
            ExtendSide.NEW, 5, ["gender"],
        )
        assert result.pairs_by_group

    def test_repeated_single_group(self, benchmark, dblp):
        keys = [
            (("m",), ("m",)), (("m",), ("f",)),
            (("f",), ("m",)), (("f",), ("f",)),
        ]

        def run():
            return [
                explore(
                    dblp, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, 5,
                    attributes=["gender"], key=key,
                )
                for key in keys
            ]

        results = benchmark(run)
        assert len(results) == 4


class TestCoarsening:
    @pytest.mark.parametrize("semantics", ["union", "intersection"])
    def test_coarsen_dblp_to_decades(self, benchmark, dblp, semantics):
        hierarchy = TimeHierarchy.regular(dblp.timeline.labels, width=10)
        coarse = benchmark(coarsen, dblp, hierarchy, semantics)
        assert len(coarse.timeline) == 3

    def test_aggregate_after_coarsen(self, benchmark, dblp):
        hierarchy = TimeHierarchy.regular(dblp.timeline.labels, width=10)
        coarse = coarsen(dblp, hierarchy, "union")

        def run():
            return aggregate(coarse, ["gender"], distinct=False)

        benchmark(run)


class TestIncrementalMaintenance:
    def test_incremental_append(self, benchmark, dblp):
        """One streamed year: append + per-point aggregate + total sum."""
        years = dblp.timeline.labels
        base = union(dblp, years[:-1])
        last = years[-1]
        nodes = {
            node: {
                "publications": dblp.attribute_value(node, "publications", last)
            }
            for node in dblp.nodes_at(last)
        }
        static = {
            node: {"gender": dblp.attribute_value(node, "gender")}
            for node in nodes
        }
        update = SnapshotUpdate(
            time=last, nodes=nodes, static=static,
            edges=list(dblp.edges_at(last)),
        )

        def setup():
            return (IncrementalStore(base, [("gender",)]),), {}

        def run(store):
            store.append(update)
            return store.union_total(["gender"])

        benchmark.pedantic(run, setup=setup, rounds=10)

    def test_full_recomputation_baseline(self, benchmark, dblp):
        """What the incremental path avoids: re-aggregating everything."""
        def run():
            return aggregate(
                union(dblp, dblp.timeline.labels), ["gender"], distinct=False
            )

        benchmark(run)
