"""Fabric benchmark: persistent shard-pinned pool vs. per-call pool.

Drives the mixed serving workload (:func:`repro.serving.mixed_queries`
through :func:`repro.serving.run_workload`, the same driver as
``bench_serving.py``) with every request's fan-outs pinned to an
executor via ``QueryServer(executor=...)``:

* **fabric** — one persistent :class:`repro.parallel.ShardedExecutor`
  shared by all request threads: workers fork once, the graph payload
  ships once per worker, task groups batch per call;
* **percall** — a :class:`repro.parallel.ParallelExecutor` of the same
  width: every fan-out forks a fresh pool and re-ships the payload, the
  pre-fabric behaviour.

The result cache is disabled and the cube's cuboid cache is invalidated
per request, so every request truly executes its aggregation fan-out on
the pinned executor — the two arms differ *only* in pool lifecycle,
which is exactly what the gate measures.  Before anything is timed,
every query is served once per arm and checked bit-identical to a naive
inline evaluation.

Results land in ``BENCH_fabric.json``.  Run directly::

    PYTHONPATH=src python benchmarks/bench_fabric.py [--smoke]

The gate (fabric >= {GATE}x the per-call arm's sustained QPS on the
full-size run) encodes the point of the subsystem: amortizing fork and
payload shipping across requests must beat paying them per call.  The
ratio is machine-portable — both arms run the same work on the same
box; only the pool lifecycle differs — and holds even on one CPU, where
per-call fork cost dominates the fan-out.  ``--smoke`` shrinks the
workload for CI; the checked-in JSON comes from a full run.  This file
is a script, not a pytest module — pytest collects nothing from it.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

import numpy as np

from repro.core import TemporalGraph, presence_signature
from repro.datasets import generate_dblp
from repro.parallel import ParallelExecutor, ShardedExecutor
from repro.query import run_query
from repro.serving import QueryServer, mixed_queries, run_workload

#: Minimum fabric-over-percall sustained QPS ratio on the full-size run.
GATE = 1.5

#: Pool width for both arms (identical by construction; the comparison
#: is lifecycle-only).
WORKERS = 2

ATTRS = ["gender", "publications"]


def make_arm(graph, executor):
    """A serving arm: a server pinned to ``executor`` whose execute
    callable busts the cuboid cache first, so every request re-runs the
    aggregation fan-out instead of answering from a warm cuboid."""
    server = QueryServer(graph, cache_capacity=0, executor=executor)

    def execute(text):
        server.cube.invalidate()
        return server.serve(text)

    return server, execute


def check_parity(graph, queries, executors):
    """Every arm must serve every query bit-identically to a naive
    inline evaluation before either arm is timed."""
    for name, executor in executors:
        server, execute = make_arm(graph, executor)
        with server:
            for text in queries:
                naive = run_query(graph, text)
                served = execute(text).result
                if isinstance(served, TemporalGraph):
                    assert presence_signature(served) == presence_signature(
                        naive
                    ), f"{name} serve of {text!r} diverged from naive"
                else:
                    problems = served.diff(naive)
                    assert not problems, (
                        f"{name} serve of {text!r} diverged: {problems[0]}"
                    )


def bench_arms(graph, queries, requests, threads, repeats, executors):
    """QPS / latency per arm, best-of-``repeats`` through the shared
    workload driver.  The fabric persists across repeats (steady-state
    serving is its whole point); the per-call arm has nothing to keep."""
    rows = []
    for mode, executor in executors:
        server, execute = make_arm(graph, executor)
        with server:
            best = None
            for _ in range(repeats):
                report = run_workload(
                    execute, queries, requests=requests, threads=threads
                )
                if best is None or report.qps > best.qps:
                    best = report
        rows.append(
            {
                "mode": mode,
                "workers": executor.workers,
                "requests": best.requests,
                "threads": best.threads,
                "duration_s": best.duration_s,
                "qps": best.qps,
                "mean_ms": best.mean_ms,
                "p50_ms": best.p50_ms,
                "p99_ms": best.p99_ms,
            }
        )
        print(f"  {mode:>8}: {best.describe()}")
    return rows


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny dataset and one repeat (CI); waives the QPS gate",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_fabric.json",
        help="where to write the JSON report",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--threads", type=int, default=4)
    args = parser.parse_args(argv)
    args.output = args.output.expanduser().resolve()

    if args.smoke:
        scale = args.scale or 0.01
        repeats = args.repeats or 1
        requests = args.requests or 24
    else:
        # Small graph on purpose: the gate measures pool *lifecycle*
        # (fork + payload shipping per fan-out), so per-request compute
        # must not drown the term under test.  At scale 0.05 compute
        # dominates and the ratio collapses toward 1 regardless of how
        # good the fabric is.
        scale = args.scale or 0.015
        repeats = args.repeats or 2
        requests = args.requests or 160

    graph = generate_dblp(scale=scale)
    queries = mixed_queries(graph, ATTRS)
    fabric = ShardedExecutor(WORKERS)
    percall = ParallelExecutor(WORKERS)
    try:
        print(
            f"fabric (dblp @ scale {scale}: {graph.n_nodes} nodes, "
            f"{len(queries)} queries x {requests} requests, "
            f"{args.threads} threads, {WORKERS} workers):"
        )
        executors = (("fabric", fabric), ("percall", percall))
        check_parity(graph, queries, executors)
        rows = bench_arms(
            graph, queries, requests, args.threads, repeats, executors
        )
    finally:
        fabric.close()
    by_mode = {row["mode"]: row for row in rows}
    ratio = by_mode["fabric"]["qps"] / by_mode["percall"]["qps"]
    print(f"  fabric/percall QPS ratio: {ratio:.2f}x (gate {GATE}x)")

    report = {
        "meta": {
            "smoke": args.smoke,
            "repeats": repeats,
            "scale": scale,
            "dataset": "dblp",
            "requests": requests,
            "threads": args.threads,
            "workers": WORKERS,
            "n_queries": len(queries),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "gate": GATE,
        },
        "arms": rows,
        "speedup": ratio,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.smoke:
        # One repeat on a tiny graph is too noisy to bind the gate; the
        # full-size run is what the committed baseline comes from.
        return 0
    if ratio < GATE:
        print(
            f"WARNING: fabric arm is {ratio:.2f}x the per-call arm, "
            f"below the {GATE}x gate"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
