"""Shared benchmark fixtures.

The benchmark suite runs against the synthetic DBLP/MovieLens graphs at a
configurable fraction of the paper's sizes.  Set ``REPRO_BENCH_SCALE``
(default 0.05) to trade fidelity for runtime; 1.0 regenerates the paper's
full Table 3/4 sizes (dataset generation alone then takes ~90 s).
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import generate_dblp, generate_movielens

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def dblp():
    """The DBLP-like graph at the benchmark scale."""
    return generate_dblp(scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def movielens():
    """The MovieLens-like graph at the benchmark scale."""
    return generate_movielens(scale=BENCH_SCALE)
