"""Shared benchmark fixtures.

The benchmark suite runs against the synthetic DBLP/MovieLens graphs at a
configurable fraction of the paper's sizes.  Set ``REPRO_BENCH_SCALE``
(default 0.05) to trade fidelity for runtime; 1.0 regenerates the paper's
full Table 3/4 sizes (dataset generation alone then takes ~90 s).

Randomness derives from the same ``REPRO_TEST_SEED`` env var as the test
suite (default 0 = the committed baseline); the seed is printed in the
pytest header and on every failure so benchmark flakes are replayable.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.datasets import generate_dblp, generate_movielens

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
TEST_SEED = int(os.environ.get("REPRO_TEST_SEED", "0"))

#: Relative slack applied when the regression tests re-check the gates
#: recorded in the committed ``BENCH_*.json`` reports (the reports come
#: from full runs on a particular machine; exact equality is meaningless
#: elsewhere).  Override with ``REPRO_BENCH_TOLERANCE``.
BENCH_TOLERANCE = float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.25"))

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_baseline(filename: str) -> dict:
    """Load a committed ``BENCH_*.json`` report from the repo root.

    Fails the bench_smoke gate loudly — naming the file — when the
    baseline is missing, unreadable or unparsable.  A broken baseline
    used to surface as collection-time noise that could scroll past; it
    must never look like a passing gate.
    """
    path = REPO_ROOT / filename
    if not path.exists():
        pytest.fail(
            f"committed baseline {filename} is missing — regenerate it "
            f"with the matching benchmarks/bench_*.py script"
        )
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError as exc:
        pytest.fail(f"committed baseline {filename} is unreadable: {exc}")
    try:
        report = json.loads(raw)
    except json.JSONDecodeError as exc:
        pytest.fail(
            f"committed baseline {filename} is not valid JSON ({exc}) — "
            f"regenerate it with the matching benchmarks/bench_*.py script"
        )
    if not isinstance(report, dict) or "meta" not in report:
        pytest.fail(
            f"committed baseline {filename} parsed but is not a benchmark "
            f"report (no 'meta' section) — regenerate it"
        )
    return report


def pytest_report_header(config):
    return (
        f"REPRO_TEST_SEED={TEST_SEED} REPRO_BENCH_SCALE={BENCH_SCALE} "
        f"REPRO_BENCH_TOLERANCE={BENCH_TOLERANCE}"
    )


@pytest.hookimpl(wrapper=True)
def pytest_runtest_makereport(item, call):
    report = yield
    if report.failed:
        report.sections.append(
            ("seed", f"REPRO_TEST_SEED={TEST_SEED} (replay with this env var)")
        )
    return report


@pytest.fixture(scope="session")
def test_seed() -> int:
    """The suite-wide base seed (``REPRO_TEST_SEED``, default 0)."""
    return TEST_SEED


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_tolerance() -> float:
    """Relative slack for re-checking recorded benchmark gates."""
    return BENCH_TOLERANCE


@pytest.fixture(scope="session")
def explore_baseline() -> dict:
    return load_baseline("BENCH_explore.json")


@pytest.fixture(scope="session")
def obs_baseline() -> dict:
    return load_baseline("BENCH_obs.json")


@pytest.fixture(scope="session")
def parallel_baseline() -> dict:
    return load_baseline("BENCH_parallel.json")


@pytest.fixture(scope="session")
def streaming_baseline() -> dict:
    return load_baseline("BENCH_streaming.json")


@pytest.fixture(scope="session")
def serving_baseline() -> dict:
    return load_baseline("BENCH_serving.json")


@pytest.fixture(scope="session")
def storage_baseline() -> dict:
    return load_baseline("BENCH_storage.json")


@pytest.fixture(scope="session")
def fabric_baseline() -> dict:
    return load_baseline("BENCH_fabric.json")


@pytest.fixture(scope="session")
def dblp():
    """The DBLP-like graph at the benchmark scale."""
    return generate_dblp(scale=BENCH_SCALE, seed=7 + TEST_SEED)


@pytest.fixture(scope="session")
def movielens():
    """The MovieLens-like graph at the benchmark scale."""
    return generate_movielens(scale=BENCH_SCALE, seed=11 + TEST_SEED)
