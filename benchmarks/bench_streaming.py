"""Streaming ingestion benchmark: delta-maintained views vs. recompute.

Replays a scaled DBLP history through :class:`repro.streaming.StreamingStore`
and measures, per appended time point, keeping three kinds of derived
state current:

* **totals** — the union-window ALL aggregate
  (:class:`~repro.materialize.AggregateTotalsView`) vs. re-aggregating
  the whole grown window after every append;
* **evolution** — the evolution overlay between the seed window and the
  appended tail (:class:`~repro.streaming.EvolutionView`) vs. a
  from-scratch ``aggregate_evolution`` per append;
* **exploration** — the growing-new-side event chain
  (:class:`~repro.streaming.ExplorationView`) vs. re-walking the full
  :meth:`ChainEvaluator.chain` per append.

Every delta result is checked identical to its recompute twin before
anything is timed, so the speedups can never come from divergent work.
Raw ingestion throughput (appends/s, no views) is recorded alongside.

Results land in ``BENCH_streaming.json``.  Run directly::

    PYTHONPATH=src python benchmarks/bench_streaming.py [--smoke]

The gate (every delta path >= {GATE}x its recompute twin on the
full-size run) encodes the point of the subsystem: maintenance must beat
recomputation, and the margin grows with the timeline since recompute is
O(window) per append while the delta step is O(new point).  ``--smoke``
shrinks the workload for CI; the checked-in JSON comes from a full run.
This file is a script, not a pytest module — pytest collects nothing
from it.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

import numpy as np

from repro.bench import measure, speedup
from repro.core import aggregate, aggregate_evolution
from repro.core.updates import append_snapshot, split_history
from repro.datasets import generate_dblp
from repro.exploration import (
    ChainEvaluator,
    EntityKind,
    EventCounter,
    EventType,
    ExtendSide,
    Semantics,
)
from repro.materialize.streaming import AggregateTotalsView
from repro.streaming import EvolutionView, ExplorationView, StreamingStore

#: Minimum delta-over-recompute speedup for every maintained view on the
#: full-size run.  DBLP's timeline is only 21 points, so the window-size
#: advantage is bounded; the totals path lands near ~1.7x while the
#: chain-walk paths clear 4x.
GATE = 1.5

ATTRS = ["gender"]


def grown_graphs(initial, updates):
    """The grown graph after each append, built once and shared by both
    timed paths so only the *maintenance* work differs between them."""
    graphs = []
    graph = initial
    for update in updates:
        graph = append_snapshot(graph, update)
        graphs.append(graph)
    return graphs


def _delta_totals(initial, graphs, updates):
    view = AggregateTotalsView([tuple(ATTRS)])
    view.rebuild(initial)
    for graph, update in zip(graphs, updates):
        view.extend(graph, update)
    return view.union_total(ATTRS)


def _scratch_totals(initial, graphs, updates):
    result = None
    for graph in graphs:
        result = aggregate(graph, ATTRS, distinct=False)
    return result


def _delta_evolution(initial, graphs, updates):
    view = EvolutionView(ATTRS, old_times=initial.timeline.labels)
    view.rebuild(initial)
    result = None
    for graph, update in zip(graphs, updates):
        view.extend(graph, update)
        result = view.current()
    return result


def _scratch_evolution(initial, graphs, updates):
    old = initial.timeline.labels
    result = None
    for graph in graphs:
        new = graph.timeline.labels[len(old):]
        result = aggregate_evolution(graph, old, new, ATTRS)
    return result


def _delta_exploration(initial, graphs, updates):
    view = ExplorationView(EventType.GROWTH, entity=EntityKind.NODES)
    view.rebuild(initial)
    for graph, update in zip(graphs, updates):
        view.extend(graph, update)
    return view.counts()


def _scratch_exploration(initial, graphs, updates):
    reference = len(initial.timeline.labels) - 1
    counts = ()
    for graph in graphs:
        evaluator = ChainEvaluator(
            EventCounter(graph, entity=EntityKind.NODES), EventType.GROWTH
        )
        counts = tuple(
            step.count
            for step in evaluator.chain(
                reference, ExtendSide.NEW, Semantics.UNION
            )
        )
    return counts


def _totals_parity(delta, scratch):
    return (
        dict(delta.node_weights) == dict(scratch.node_weights)
        and dict(delta.edge_weights) == dict(scratch.edge_weights)
    )


WORKLOADS = (
    ("totals", _delta_totals, _scratch_totals, _totals_parity),
    ("evolution", _delta_evolution, _scratch_evolution,
     lambda delta, scratch: delta.diff(scratch) == ()),
    ("exploration", _delta_exploration, _scratch_exploration,
     lambda delta, scratch: delta == scratch),
)


def bench_appends(initial, updates, repeats):
    """Raw ingestion throughput: replay with no registered views."""

    def run():
        store = StreamingStore(initial)
        for update in updates:
            store.append_snapshot(update)
        return store.version

    timing = measure(run, repeats=repeats)
    rate = len(updates) / timing.best if timing.best else float("inf")
    print(
        f"  ingestion: {len(updates)} appends in {timing.best:.4f}s "
        f"({rate:.1f} appends/s)"
    )
    return {
        "appends": len(updates),
        "best_s": timing.best,
        "appends_per_s": rate,
    }


def bench_views(initial, graphs, updates, repeats):
    """Delta vs. recompute timings per maintained view, parity-checked."""
    rows = []
    for name, delta_fn, scratch_fn, parity in WORKLOADS:
        delta_result = delta_fn(initial, graphs, updates)
        scratch_result = scratch_fn(initial, graphs, updates)
        assert parity(delta_result, scratch_result), (
            f"{name}: delta maintenance diverged from recompute"
        )
        scratch = measure(
            lambda: scratch_fn(initial, graphs, updates), repeats=repeats
        )
        delta = measure(
            lambda: delta_fn(initial, graphs, updates), repeats=repeats
        )
        rows.append(
            {
                "workload": name,
                "scratch_best_s": scratch.best,
                "delta_best_s": delta.best,
                "speedup": speedup(scratch, delta),
            }
        )
        print(
            f"  {name:>12}: recompute {scratch.best:.4f}s "
            f"delta {delta.best:.4f}s speedup {rows[-1]['speedup']:.2f}x"
        )
    return rows


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny dataset and one repeat (CI); waives the speedup gate",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_streaming.json",
        help="where to write the JSON report",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--scale", type=float, default=None)
    args = parser.parse_args(argv)
    args.output = args.output.expanduser().resolve()

    if args.smoke:
        scale = args.scale or 0.01
        repeats = args.repeats or 1
    else:
        scale = args.scale or 0.05
        repeats = args.repeats or 3

    graph = generate_dblp(scale=scale)
    initial, updates = split_history(graph)
    print(
        f"streaming (dblp @ scale {scale}: {len(graph.nodes)} nodes, "
        f"{len(updates)} appends):"
    )
    appends_row = bench_appends(initial, updates, repeats)
    rows = bench_views(initial, grown_graphs(initial, updates), updates, repeats)

    report = {
        "meta": {
            "smoke": args.smoke,
            "repeats": repeats,
            "scale": scale,
            "dataset": "dblp",
            "n_appends": len(updates),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "gate": GATE,
        },
        "ingestion": appends_row,
        "speedups": rows,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.smoke:
        # Smoke timelines are too short for maintenance to pay off;
        # only the full-size run says anything about the gate.
        return 0
    worst = min(row["speedup"] for row in rows)
    if worst < GATE:
        print(
            f"WARNING: slowest delta path is {worst:.2f}x recompute, "
            f"below the {GATE}x gate"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
