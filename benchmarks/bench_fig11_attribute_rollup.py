"""Figure 11: speedup of D-distributive attribute roll-up per time point.

Deriving a subset aggregate from a materialized superset aggregate vs.
computing the subset from scratch.  The paper reports speedups of
6x-21x (DBLP pair -> single), up to 48x (MovieLens pair -> single) and
smaller gains for pair/triplet roll-ups from the 4-attribute aggregate —
the expected shape here is likewise "fewer target attributes, larger
speedup".  Correctness (derived == scratch) is asserted on each run.
"""

import pytest

from repro.core import aggregate
from repro.materialize import MaterializedStore

ML_ALL = ("gender", "age", "occupation", "rating")


@pytest.fixture(scope="module")
def dblp_store(dblp):
    store = MaterializedStore(dblp)
    for time in dblp.timeline.labels:
        store.timepoint_aggregate(["gender", "publications"], time, distinct=True)
    return store


@pytest.fixture(scope="module")
def ml_store(movielens):
    store = MaterializedStore(movielens)
    for time in movielens.timeline.labels:
        store.timepoint_aggregate(list(ML_ALL), time, distinct=True)
    return store


@pytest.mark.parametrize("subset", [("gender",), ("publications",)],
                         ids=lambda s: "+".join(s))
def test_fig11a_dblp_scratch(benchmark, dblp, subset):
    year = dblp.timeline.labels[-1]
    benchmark(aggregate, dblp, list(subset), True, [year])


@pytest.mark.parametrize("subset", [("gender",), ("publications",)],
                         ids=lambda s: "+".join(s))
def test_fig11a_dblp_rollup(benchmark, dblp, dblp_store, subset):
    year = dblp.timeline.labels[-1]
    derived = benchmark(
        dblp_store.rollup_aggregate,
        ["gender", "publications"], list(subset), year,
    )
    direct = aggregate(dblp, list(subset), distinct=True, times=[year])
    assert dict(derived.node_weights) == dict(direct.node_weights)


@pytest.mark.parametrize(
    "subset",
    [("gender",), ("rating",), ("gender", "age"), ("gender", "age", "rating")],
    ids=lambda s: "+".join(s),
)
def test_fig11bcd_movielens_scratch(benchmark, movielens, subset):
    month = "Aug"
    benchmark(aggregate, movielens, list(subset), True, [month])


@pytest.mark.parametrize(
    "subset",
    [("gender",), ("rating",), ("gender", "age"), ("gender", "age", "rating")],
    ids=lambda s: "+".join(s),
)
def test_fig11bcd_movielens_rollup(benchmark, movielens, ml_store, subset):
    month = "Aug"
    derived = benchmark(
        ml_store.rollup_aggregate, list(ML_ALL), list(subset), month
    )
    direct = aggregate(movielens, list(subset), distinct=True, times=[month])
    assert dict(derived.node_weights) == dict(direct.node_weights)
