"""Tables 3 and 4: dataset generation and per-time-point size reports.

The benchmark table's one row per dataset covers generation cost; each
test also asserts that the generated sizes follow the paper's tables
(scaled), so a timing run doubles as a calibration check.
"""

from repro.datasets import (
    dblp_config,
    generate_dblp,
    generate_movielens,
    movielens_config,
)

from conftest import BENCH_SCALE


def test_table3_generate_dblp(benchmark):
    graph = benchmark(generate_dblp, scale=BENCH_SCALE)
    config = dblp_config(scale=BENCH_SCALE)
    for year, target in zip(config.times, config.node_targets):
        assert graph.n_nodes_at(year) == target


def test_table4_generate_movielens(benchmark):
    graph = benchmark(generate_movielens, scale=BENCH_SCALE)
    config = movielens_config(scale=BENCH_SCALE)
    for month, target in zip(config.times, config.node_targets):
        assert graph.n_nodes_at(month) == target


def test_table3_size_report(benchmark, dblp):
    rows = benchmark(dblp.size_table)
    assert len(rows) == 21


def test_table4_size_report(benchmark, movielens):
    rows = benchmark(movielens.size_table)
    assert len(rows) == 6
