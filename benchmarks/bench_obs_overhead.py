"""Observability overhead benchmark: the instrumentation must be free.

The tracer's disabled no-op fast path and the always-on counter dict
updates are budgeted at <= 5% overhead on the two workloads the paper's
evaluation leans on:

* **Figure 5 aggregation** — per-time-point DIST/ALL aggregation over
  the DBLP attribute sets (``fig5_timepoint_aggregation``);
* **exploration scaling** — pruned + exhaustive STABILITY/MAXIMAL/NEW
  exploration over a synthetic 60-point timeline (the
  ``bench_exploration_scaling`` workload).

Each workload runs with the default disabled tracer and metrics in place
(the shipped configuration) and the measured best times are compared
against the pre-instrumentation baselines recorded at the top of this
file.  A third section measures the *enabled* tracer for reference; it
has no budget, but the span tree it produces is asserted non-trivial.

Results land in ``BENCH_obs.json``.  Run directly::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--smoke]

``--smoke`` shrinks both workloads so CI finishes in seconds; the
checked-in JSON comes from a full run.  This file is a script, not a
pytest module — pytest collects nothing from it.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

import numpy as np

from repro.bench import fig5_timepoint_aggregation, measure
from repro.datasets import (
    EvolvingGraphConfig,
    StaticAttributeSpec,
    VaryingAttributeSpec,
    generate_dblp,
    generate_evolving_graph,
)
from repro.exploration import EventType, ExtendSide, Goal, exhaustive_explore, explore
from repro.obs import MetricsRegistry, Tracer, set_metrics, set_tracer

#: Best wall times measured on the pre-instrumentation tree (the parent
#: commit, via a clean worktree) back-to-back with the post numbers in
#: BENCH_obs.json, so both sides saw the same machine conditions.
PRE_INSTRUMENTATION_BASELINE_S = {
    "fig5_aggregation": 0.17044946199985134,
    "exploration_scaling": 0.16601255299974582,
}

#: Maximum tolerated disabled-instrumentation slowdown vs. baseline.
OVERHEAD_BUDGET = 0.05

DBLP_SCALE = 0.02
FIG5_ATTRIBUTE_SETS = [["gender"], ["publications"], ["gender", "publications"]]


def synthetic_graph(n_times: int, nodes: int, edges: int, seed: int = 7):
    def level(rng, node_ids, t):
        return (node_ids % 4 + 1).astype(object)

    config = EvolvingGraphConfig(
        times=tuple(range(n_times)),
        node_targets=(nodes,) * n_times,
        edge_targets=(edges,) * n_times,
        node_survival=0.8,
        node_return=0.3,
        edge_repeat=0.5,
        static_attrs=(StaticAttributeSpec("color", ("red", "blue", "green")),),
        varying_attrs=(VaryingAttributeSpec("level", level),),
        seed=seed,
    )
    return generate_evolving_graph(config)


def _fig5_workload(graph):
    return lambda: fig5_timepoint_aggregation(
        graph, FIG5_ATTRIBUTE_SETS, repeats=1
    )


def _exploration_workload(graph):
    def run():
        a = explore(
            graph, EventType.STABILITY, Goal.MAXIMAL, ExtendSide.NEW, 1
        )
        b = exhaustive_explore(
            graph, EventType.STABILITY, Goal.MAXIMAL, ExtendSide.NEW, 1
        )
        return (a.evaluations, b.evaluations)

    return run


def bench_workload(name, fn, repeats, baseline_key):
    """Time ``fn`` with the disabled (default) and enabled tracer."""
    set_tracer(Tracer(enabled=False))
    set_metrics(MetricsRegistry())
    disabled = measure(fn, repeats=repeats)

    tracer = Tracer(enabled=True)
    set_tracer(tracer)
    set_metrics(MetricsRegistry())
    enabled = measure(fn, repeats=repeats)
    span_count = (
        sum(1 for _ in tracer.last_root.walk()) if tracer.last_root else 0
    )
    set_tracer(Tracer(enabled=False))
    set_metrics(MetricsRegistry())

    baseline = PRE_INSTRUMENTATION_BASELINE_S[baseline_key]
    overhead = disabled.best / baseline - 1.0
    row = {
        "workload": name,
        "baseline_s": baseline,
        "disabled_best_s": disabled.best,
        "disabled_mean_s": disabled.mean,
        "enabled_best_s": enabled.best,
        "disabled_overhead_vs_baseline": overhead,
        "enabled_spans": span_count,
        "repeats": repeats,
    }
    print(
        f"  {name}: baseline {baseline:.4f}s, disabled {disabled.best:.4f}s "
        f"({overhead:+.1%}), enabled {enabled.best:.4f}s "
        f"({span_count} spans)"
    )
    return row


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny datasets and one repeat (CI); skips the budget gate",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_obs.json",
        help="where to write the JSON report",
    )
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)
    # A relative --output must mean "relative to where the run started",
    # even if dataset generation or a harness chdirs before the write.
    args.output = args.output.expanduser().resolve()

    if args.smoke:
        dblp_scale, n_times, nodes, edges = 0.01, 12, 80, 160
        repeats = args.repeats or 1
    else:
        dblp_scale, n_times, nodes, edges = DBLP_SCALE, 60, 300, 600
        repeats = args.repeats or 7

    print("observability overhead (disabled tracer vs. pre-PR baseline):")
    dblp = generate_dblp(scale=dblp_scale)
    synthetic = synthetic_graph(n_times, nodes, edges)
    rows = [
        bench_workload(
            "fig5_aggregation", _fig5_workload(dblp), repeats, "fig5_aggregation"
        ),
        bench_workload(
            "exploration_scaling",
            _exploration_workload(synthetic),
            repeats,
            "exploration_scaling",
        ),
    ]

    report = {
        "meta": {
            "smoke": args.smoke,
            "repeats": repeats,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "budget": OVERHEAD_BUDGET,
            "dblp_scale": dblp_scale,
            "synthetic_size": {
                "n_times": n_times, "nodes_per_t": nodes, "edges_per_t": edges
            },
        },
        "workloads": rows,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.smoke:
        # Smoke sizes differ from the baselines' sizes; the overhead
        # comparison is only meaningful at full scale.
        return 0
    worst = max(row["disabled_overhead_vs_baseline"] for row in rows)
    if worst > OVERHEAD_BUDGET:
        print(
            f"WARNING: disabled-instrumentation overhead {worst:+.1%} "
            f"exceeds the {OVERHEAD_BUDGET:.0%} budget"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
