"""Parallel executor speedup benchmark: serial vs. pooled fan-out.

Measures what :mod:`repro.parallel` buys on the two fan-out sites that
dominate the paper's evaluation workloads:

* **exploration** — pruned STABILITY/MAXIMAL/NEW exploration over a
  Figure-13-scale synthetic timeline, serial vs. 2 and 4 workers;
* **aggregation** — full-window DIST aggregation over the same graph,
  serial vs. 2 and 4 workers;
* **inline guarantee** — ``parallelism=1`` must cost the same as the
  plain serial call (the single-worker pool short-circuits inline).

Every pooled run is checked bit-identical (``diff() == ()``) against
its serial twin before it is timed, so the numbers can never come from
divergent work.

Results land in ``BENCH_parallel.json``.  Run directly::

    PYTHONPATH=src python benchmarks/bench_parallel_speedup.py [--smoke]

The speedup gate (>= {GATE}x at 4 workers on the full-size exploration
workload) only applies when the machine actually has >= 4 CPUs — the
report records ``cpu_count`` so a regression harness on a smaller box
can tell why the gate was waived.  ``--smoke`` shrinks the workloads
for CI; the checked-in JSON comes from a full run.  This file is a
script, not a pytest module — pytest collects nothing from it.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

import numpy as np

from repro.bench import measure, speedup
from repro.core import aggregate
from repro.datasets import (
    EvolvingGraphConfig,
    StaticAttributeSpec,
    VaryingAttributeSpec,
    generate_evolving_graph,
)
from repro.exploration import EventType, ExtendSide, Goal, explore

#: Minimum 4-worker speedup on the full-size exploration workload,
#: enforced only on machines with at least ``GATE_MIN_CPUS`` CPUs.
GATE = 1.8
GATE_MIN_CPUS = 4

WORKER_COUNTS = (2, 4)


def synthetic_graph(n_times: int, nodes: int, edges: int, seed: int = 7):
    def level(rng, node_ids, t):
        return (node_ids % 4 + 1).astype(object)

    config = EvolvingGraphConfig(
        times=tuple(range(n_times)),
        node_targets=(nodes,) * n_times,
        edge_targets=(edges,) * n_times,
        node_survival=0.8,
        node_return=0.3,
        edge_repeat=0.5,
        static_attrs=(StaticAttributeSpec("color", ("red", "blue", "green")),),
        varying_attrs=(VaryingAttributeSpec("level", level),),
        seed=seed,
    )
    return generate_evolving_graph(config)


def _explore_fn(graph, workers):
    return lambda: explore(
        graph,
        EventType.STABILITY,
        Goal.MAXIMAL,
        ExtendSide.NEW,
        1,
        parallelism=workers,
    )


def _aggregate_fn(graph, workers):
    return lambda: aggregate(
        graph, ["color", "level"], distinct=True, parallelism=workers
    )


def bench_site(name, graph, make_fn, repeats):
    """Serial vs. pooled timings for one fan-out site, parity-checked."""
    serial = measure(make_fn(graph, None), repeats=repeats)
    rows = []
    for workers in WORKER_COUNTS:
        pooled_result = make_fn(graph, workers)()
        assert serial.result.diff(pooled_result) == (), (
            f"{name}: parallelism={workers} diverged from serial"
        )
        pooled = measure(make_fn(graph, workers), repeats=repeats)
        rows.append(
            {
                "workload": name,
                "workers": workers,
                "serial_best_s": serial.best,
                "parallel_best_s": pooled.best,
                "parallel_mean_s": pooled.mean,
                "speedup": speedup(serial, pooled),
            }
        )
        print(
            f"  {name:>12} workers={workers}: serial {serial.best:.4f}s "
            f"pooled {pooled.best:.4f}s speedup {rows[-1]['speedup']:.2f}x"
        )
    return rows


def bench_inline_guarantee(graph, repeats):
    """``parallelism=1`` must not pay pool overhead."""
    serial = measure(_explore_fn(graph, None), repeats=repeats)
    inline = measure(_explore_fn(graph, 1), repeats=repeats)
    assert serial.result.diff(inline.result) == ()
    overhead = inline.best / serial.best - 1.0
    print(
        f"  inline guarantee: serial {serial.best:.4f}s "
        f"parallelism=1 {inline.best:.4f}s ({overhead:+.1%})"
    )
    return {
        "workload": "explore_inline_guarantee",
        "serial_best_s": serial.best,
        "workers1_best_s": inline.best,
        "overhead": overhead,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny datasets and one repeat (CI); waives the speedup gate",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_parallel.json",
        help="where to write the JSON report",
    )
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)
    # A relative --output must mean "relative to where the run started",
    # even if dataset generation or a harness chdirs before the write.
    args.output = args.output.expanduser().resolve()

    if args.smoke:
        n_times, nodes, edges = 12, 80, 160
        repeats = args.repeats or 1
    else:
        n_times, nodes, edges = 60, 300, 600
        repeats = args.repeats or 3

    cpu_count = os.cpu_count() or 1
    graph = synthetic_graph(n_times, nodes, edges)
    print(f"parallel speedup ({cpu_count} CPUs):")
    rows = bench_site("explore", graph, _explore_fn, repeats)
    rows += bench_site("aggregate", graph, _aggregate_fn, repeats)
    inline_row = bench_inline_guarantee(graph, repeats)

    report = {
        "meta": {
            "smoke": args.smoke,
            "repeats": repeats,
            "cpu_count": cpu_count,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "gate": GATE,
            "gate_min_cpus": GATE_MIN_CPUS,
            "synthetic_size": {
                "n_times": n_times,
                "nodes_per_t": nodes,
                "edges_per_t": edges,
            },
        },
        "speedups": rows,
        "inline_guarantee": inline_row,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.smoke:
        # Smoke sizes are dominated by pool startup; only the full-size
        # run says anything about scaling.
        return 0
    if cpu_count < GATE_MIN_CPUS:
        print(
            f"NOTE: speedup gate waived ({cpu_count} CPUs < "
            f"{GATE_MIN_CPUS}); recorded for cross-machine comparison only"
        )
        return 0
    best = max(
        (
            r["speedup"]
            for r in rows
            if r["workload"] == "explore" and r["workers"] == 4
        ),
        default=0.0,
    )
    if best < GATE:
        print(
            f"WARNING: 4-worker exploration speedup {best:.2f}x is below "
            f"the {GATE}x gate"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
