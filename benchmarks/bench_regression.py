"""Benchmark-regression gate over the committed ``BENCH_*.json`` reports.

Run with ``pytest benchmarks -m bench_smoke``.  Three layers:

* **structure** — every committed report has the sections and row keys
  its producing script writes, came from a full (non-smoke) run, and
  its derived numbers (speedups, overheads) recompute from the raw
  timings;
* **recorded gates** — the claims each report was committed to support
  still hold within ``REPRO_BENCH_TOLERANCE`` (see
  ``benchmarks/conftest.py``): the incremental-evaluator speedups, the
  observability overhead budget, and — only when the recording machine
  had enough CPUs — the parallel-executor speedup gate;
* **live smoke** — the parallel benchmark re-runs end to end at smoke
  size, which re-asserts serial/parallel parity on this machine before
  any timing is trusted.

Wall-clock times are never compared across machines; only ratios and
internal consistency are checked, so the gate is meaningful on any box.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from bench_fabric import GATE as FABRIC_GATE
from bench_fabric import main as fabric_bench_main
from bench_parallel_speedup import GATE, GATE_MIN_CPUS
from bench_parallel_speedup import main as parallel_bench_main
from bench_serving import GATE as SERVING_GATE
from bench_serving import main as serving_bench_main
from bench_storage import GATE_FOOTPRINT as STORAGE_GATE_FOOTPRINT
from bench_storage import GATE_LATENCY as STORAGE_GATE_LATENCY
from bench_storage import main as storage_bench_main
from bench_streaming import GATE as STREAMING_GATE
from bench_streaming import main as streaming_bench_main

pytestmark = pytest.mark.bench_smoke

#: Gate recorded in bench_exploration_scaling.py for 50+-point timelines.
EXPLORE_GATE = 3.0


def _recomputes(ratio: float, numerator: float, denominator: float) -> bool:
    return denominator > 0 and abs(ratio - numerator / denominator) < 1e-9


class TestExploreBaseline:
    def test_structure(self, explore_baseline):
        assert not explore_baseline["meta"]["smoke"]
        for section in ("synthetic_scaling", "varying_fallback", "paper_configs"):
            assert explore_baseline[section], f"{section} is empty"
            for row in explore_baseline[section]:
                assert row["old_best_s"] > 0
                assert row["new_best_s"] > 0
                assert _recomputes(
                    row["speedup"], row["old_best_s"], row["new_best_s"]
                )

    def test_paper_configs_cover_both_datasets(self, explore_baseline):
        datasets = {row["dataset"] for row in explore_baseline["paper_configs"]}
        assert datasets == {"movielens", "dblp"}

    def test_long_timeline_speedup_gate(self, explore_baseline, bench_tolerance):
        best = max(
            row["speedup"]
            for row in explore_baseline["synthetic_scaling"]
            if row["n_times"] >= 50
        )
        assert best >= EXPLORE_GATE * (1 - bench_tolerance)


class TestObsBaseline:
    def test_structure(self, obs_baseline):
        assert not obs_baseline["meta"]["smoke"]
        workloads = {row["workload"] for row in obs_baseline["workloads"]}
        assert workloads == {"fig5_aggregation", "exploration_scaling"}
        for row in obs_baseline["workloads"]:
            assert _recomputes(
                row["disabled_overhead_vs_baseline"] + 1.0,
                row["disabled_best_s"],
                row["baseline_s"],
            )
            assert row["enabled_spans"] > 0

    def test_overhead_budget(self, obs_baseline, bench_tolerance):
        budget = obs_baseline["meta"]["budget"]
        for row in obs_baseline["workloads"]:
            assert row["disabled_overhead_vs_baseline"] <= budget + bench_tolerance


class TestParallelBaseline:
    def test_structure(self, parallel_baseline):
        meta = parallel_baseline["meta"]
        assert not meta["smoke"]
        assert meta["cpu_count"] >= 1
        assert meta["gate"] == GATE
        assert meta["gate_min_cpus"] == GATE_MIN_CPUS
        seen = {
            (row["workload"], row["workers"])
            for row in parallel_baseline["speedups"]
        }
        assert seen == {
            ("explore", 2),
            ("explore", 4),
            ("aggregate", 2),
            ("aggregate", 4),
        }
        for row in parallel_baseline["speedups"]:
            assert _recomputes(
                row["speedup"], row["serial_best_s"], row["parallel_best_s"]
            )

    def test_speedup_gate_when_recorded_on_enough_cpus(
        self, parallel_baseline, bench_tolerance
    ):
        # The gate only binds when the recording machine could actually
        # run 4 workers concurrently; the report keeps the numbers either
        # way so cross-machine comparisons stay possible.
        meta = parallel_baseline["meta"]
        if meta["cpu_count"] < meta["gate_min_cpus"]:
            pytest.skip(
                f"baseline recorded on {meta['cpu_count']} CPU(s); "
                f"gate needs >= {meta['gate_min_cpus']}"
            )
        best = max(
            row["speedup"]
            for row in parallel_baseline["speedups"]
            if row["workload"] == "explore" and row["workers"] == 4
        )
        assert best >= meta["gate"] * (1 - bench_tolerance)

    def test_inline_guarantee(self, parallel_baseline, bench_tolerance):
        # parallelism=1 must not have paid pool overhead when recorded.
        assert parallel_baseline["inline_guarantee"]["overhead"] <= bench_tolerance


class TestStreamingBaseline:
    def test_structure(self, streaming_baseline):
        meta = streaming_baseline["meta"]
        assert not meta["smoke"]
        assert meta["gate"] == STREAMING_GATE
        assert streaming_baseline["ingestion"]["appends"] == meta["n_appends"]
        assert streaming_baseline["ingestion"]["appends_per_s"] > 0
        workloads = {
            row["workload"] for row in streaming_baseline["speedups"]
        }
        assert workloads == {"totals", "evolution", "exploration"}
        for row in streaming_baseline["speedups"]:
            assert _recomputes(
                row["speedup"], row["scratch_best_s"], row["delta_best_s"]
            )

    def test_delta_beats_recompute_gate(
        self, streaming_baseline, bench_tolerance
    ):
        gate = streaming_baseline["meta"]["gate"]
        for row in streaming_baseline["speedups"]:
            assert row["speedup"] >= gate * (1 - bench_tolerance), (
                f"{row['workload']} delta path regressed below the gate"
            )


class TestServingBaseline:
    def test_structure(self, serving_baseline):
        meta = serving_baseline["meta"]
        assert not meta["smoke"]
        assert meta["gate"] == SERVING_GATE
        assert meta["n_queries"] > 0
        modes = {row["mode"] for row in serving_baseline["arms"]}
        assert modes == {"cached", "uncached"}
        for row in serving_baseline["arms"]:
            assert row["requests"] == meta["requests"]
            assert row["qps"] > 0
            assert row["p50_ms"] <= row["p99_ms"]
        by_mode = {row["mode"]: row for row in serving_baseline["arms"]}
        assert _recomputes(
            serving_baseline["speedup"],
            by_mode["cached"]["qps"],
            by_mode["uncached"]["qps"],
        )

    def test_cached_arm_clears_qps_gate(
        self, serving_baseline, bench_tolerance
    ):
        gate = serving_baseline["meta"]["gate"]
        assert serving_baseline["speedup"] >= gate * (1 - bench_tolerance), (
            "cached serving regressed below the QPS gate"
        )


class TestStorageBaseline:
    def test_structure(self, storage_baseline):
        meta = storage_baseline["meta"]
        assert not meta["smoke"]
        assert meta["gate_footprint"] == STORAGE_GATE_FOOTPRINT
        assert meta["gate_latency"] == STORAGE_GATE_LATENCY
        datasets = {row["dataset"] for row in storage_baseline["datasets"]}
        assert datasets == {"dblp", "movielens"}
        for row in storage_baseline["datasets"]:
            footprint = row["footprint"]
            assert set(footprint) == {"dense", "columnar"}
            assert _recomputes(
                row["footprint_reduction"],
                footprint["dense"]["nbytes"],
                footprint["columnar"]["nbytes"],
            )
            workloads = {r["workload"] for r in row["latency"]}
            assert workloads == {"masks", "slice", "aggregate"}
            for r in row["latency"]:
                assert _recomputes(
                    r["ratio"], r["columnar_best_s"], r["dense_best_s"]
                )

    def test_footprint_and_latency_gates(
        self, storage_baseline, bench_tolerance
    ):
        meta = storage_baseline["meta"]
        gated = set(meta["gated_datasets"])
        assert gated, "the report must gate at least one dataset"
        for row in storage_baseline["datasets"]:
            if row["dataset"] not in gated:
                continue
            assert row["footprint_reduction"] >= meta["gate_footprint"] * (
                1 - bench_tolerance
            ), f"{row['dataset']}: columnar footprint win regressed"
            masks = next(
                r for r in row["latency"] if r["workload"] == "masks"
            )
            assert masks["ratio"] <= meta["gate_latency"] * (
                1 + bench_tolerance
            ), f"{row['dataset']}: columnar mask hot path regressed"


class TestFabricBaseline:
    def test_structure(self, fabric_baseline):
        meta = fabric_baseline["meta"]
        assert not meta["smoke"]
        assert meta["gate"] == FABRIC_GATE
        assert meta["workers"] >= 2
        assert meta["n_queries"] > 0
        modes = {row["mode"] for row in fabric_baseline["arms"]}
        assert modes == {"fabric", "percall"}
        for row in fabric_baseline["arms"]:
            assert row["requests"] == meta["requests"]
            assert row["workers"] == meta["workers"]
            assert row["qps"] > 0
            assert row["p50_ms"] <= row["p99_ms"]
        by_mode = {row["mode"]: row for row in fabric_baseline["arms"]}
        assert _recomputes(
            fabric_baseline["speedup"],
            by_mode["fabric"]["qps"],
            by_mode["percall"]["qps"],
        )

    def test_amortization_gate(self, fabric_baseline, bench_tolerance):
        # Persistent pool vs per-call pool is a lifecycle-only ratio on
        # identical work, so — unlike the parallel speedup gate — it
        # binds regardless of the recording machine's CPU count.
        gate = fabric_baseline["meta"]["gate"]
        assert fabric_baseline["speedup"] >= gate * (1 - bench_tolerance), (
            "persistent fabric regressed below the amortization gate"
        )


class TestBaselineCatalogue:
    """Every committed ``BENCH_*.json`` must be parsable and covered.

    A baseline that is never loaded by any fixture — or that fails to
    parse — used to pass this suite silently; the catalogue check makes
    a stray, broken or orphaned report a loud failure naming the file.
    """

    #: Every committed baseline and the fixture that gates it.
    COVERED = {
        "BENCH_explore.json": "explore_baseline",
        "BENCH_obs.json": "obs_baseline",
        "BENCH_parallel.json": "parallel_baseline",
        "BENCH_streaming.json": "streaming_baseline",
        "BENCH_serving.json": "serving_baseline",
        "BENCH_storage.json": "storage_baseline",
        "BENCH_fabric.json": "fabric_baseline",
    }

    def test_every_committed_report_is_covered_and_parsable(self):
        from conftest import REPO_ROOT, load_baseline

        committed = sorted(
            path.name for path in Path(REPO_ROOT).glob("BENCH_*.json")
        )
        uncovered = [name for name in committed if name not in self.COVERED]
        assert not uncovered, (
            f"committed baselines with no regression coverage: {uncovered}; "
            f"add a fixture + gate class for each"
        )
        for name in committed:
            report = load_baseline(name)  # fails loudly, naming the file
            assert report["meta"], name

    def test_every_expected_report_is_committed(self):
        from conftest import REPO_ROOT

        missing = [
            name
            for name in self.COVERED
            if not (Path(REPO_ROOT) / name).exists()
        ]
        assert not missing, f"expected committed baselines missing: {missing}"


class TestLiveSmoke:
    def test_parallel_bench_smoke_run(self, tmp_path):
        """End-to-end smoke run: parity asserts fire on *this* machine."""
        output = tmp_path / "BENCH_parallel.json"
        exit_code = parallel_bench_main(["--smoke", "--output", str(output)])
        assert exit_code == 0
        report = json.loads(output.read_text(encoding="utf-8"))
        assert report["meta"]["smoke"] is True
        assert len(report["speedups"]) == 4
        assert report["inline_guarantee"]["serial_best_s"] > 0

    def test_streaming_bench_smoke_run(self, tmp_path):
        """End-to-end smoke run: the delta-vs-recompute parity asserts
        fire on *this* machine before anything is timed."""
        output = tmp_path / "BENCH_streaming.json"
        exit_code = streaming_bench_main(["--smoke", "--output", str(output)])
        assert exit_code == 0
        report = json.loads(output.read_text(encoding="utf-8"))
        assert report["meta"]["smoke"] is True
        assert {row["workload"] for row in report["speedups"]} == {
            "totals",
            "evolution",
            "exploration",
        }

    def test_storage_bench_smoke_run(self, tmp_path):
        """End-to-end smoke run: the backend-parity asserts fire on
        *this* machine before either layout is measured."""
        output = tmp_path / "BENCH_storage.json"
        exit_code = storage_bench_main(["--smoke", "--output", str(output)])
        assert exit_code == 0
        report = json.loads(output.read_text(encoding="utf-8"))
        assert report["meta"]["smoke"] is True
        assert {row["dataset"] for row in report["datasets"]} == {
            "dblp",
            "movielens",
        }

    def test_serving_bench_smoke_run(self, tmp_path):
        """End-to-end smoke run: the served-vs-naive parity asserts fire
        on *this* machine before either arm is timed."""
        output = tmp_path / "BENCH_serving.json"
        exit_code = serving_bench_main(["--smoke", "--output", str(output)])
        assert exit_code == 0
        report = json.loads(output.read_text(encoding="utf-8"))
        assert report["meta"]["smoke"] is True
        assert {row["mode"] for row in report["arms"]} == {
            "cached",
            "uncached",
        }
        assert report["speedup"] > 0

    def test_fabric_bench_smoke_run(self, tmp_path):
        """End-to-end smoke run: the fabric-vs-naive parity asserts fire
        on *this* machine before either pool lifecycle is timed."""
        output = tmp_path / "BENCH_fabric.json"
        exit_code = fabric_bench_main(["--smoke", "--output", str(output)])
        assert exit_code == 0
        report = json.loads(output.read_text(encoding="utf-8"))
        assert report["meta"]["smoke"] is True
        assert {row["mode"] for row in report["arms"]} == {
            "fabric",
            "percall",
        }
        assert report["speedup"] > 0
