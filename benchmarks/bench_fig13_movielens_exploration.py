"""Figure 13: exploration of female-female co-rating edges (MovieLens).

Three cases over a threshold ladder derived per Section 3.5:

* (a) stability — maximal pairs, intersection semantics (I-Explore);
* (b) growth — minimal pairs, union semantics (U-Explore);
* (c) shrinkage — minimal pairs, union semantics.

Each benchmark runs the full exploration; assertions pin the paper's
qualitative findings (the August spike dominates growth, edge turnover
is high).
"""

import pytest

from repro.exploration import (
    EventType,
    ExtendSide,
    Goal,
    explore,
    suggest_threshold,
)

FF = (("f",), ("f",))


@pytest.fixture(scope="module")
def thresholds(movielens):
    return {
        EventType.STABILITY: suggest_threshold(
            movielens, EventType.STABILITY, "max", attributes=["gender"], key=FF
        ),
        EventType.GROWTH: suggest_threshold(
            movielens, EventType.GROWTH, "max", attributes=["gender"], key=FF
        ),
        EventType.SHRINKAGE: suggest_threshold(
            movielens, EventType.SHRINKAGE, "min", attributes=["gender"], key=FF
        ),
    }


@pytest.mark.parametrize("k_factor", [0.1, 0.5, 1.0])
def test_fig13a_stability_maximal(benchmark, movielens, thresholds, k_factor):
    k = max(1, round(thresholds[EventType.STABILITY] * k_factor))
    result = benchmark(
        explore, movielens, EventType.STABILITY, Goal.MAXIMAL,
        ExtendSide.NEW, k, attributes=["gender"], key=FF,
    )
    for pair in result.pairs:
        assert pair.count >= k


@pytest.mark.parametrize("k_factor", [0.1, 0.5, 1.0])
def test_fig13b_growth_minimal(benchmark, movielens, thresholds, k_factor):
    k = max(1, round(thresholds[EventType.GROWTH] * k_factor))
    result = benchmark(
        explore, movielens, EventType.GROWTH, Goal.MINIMAL,
        ExtendSide.NEW, k, attributes=["gender"], key=FF,
    )
    if k == thresholds[EventType.GROWTH]:
        # The paper's headline: the largest growth lands on August — at
        # the top threshold, every minimal pair's new interval must
        # include August to reach k.
        labels = movielens.timeline.labels
        aug = labels.index("Aug")
        assert result.pairs
        for pair in result.pairs:
            assert aug in pair.new.interval


@pytest.mark.parametrize("k_factor", [1.0, 2.0, 5.0])
def test_fig13c_shrinkage_minimal(benchmark, movielens, thresholds, k_factor):
    k = max(1, round(thresholds[EventType.SHRINKAGE] * k_factor))
    result = benchmark(
        explore, movielens, EventType.SHRINKAGE, Goal.MINIMAL,
        ExtendSide.OLD, k, attributes=["gender"], key=FF,
    )
    for pair in result.pairs:
        assert pair.count >= k
