"""Storage-substrate benchmark: columnar vs dense footprint and latency.

Builds both registered :mod:`repro.storage` backends over the scaled
DBLP and MovieLens graphs and records, per dataset:

* **footprint** — the bytes each backend holds resident
  (:meth:`GraphStorageBackend.nbytes`: array buffers plus each distinct
  boxed attribute value counted once), and the resident-set growth a
  subprocess observes while constructing the backend (Linux ``/proc``;
  recorded informationally, ``null`` elsewhere);
* **latency** — hot-path timings for the three read primitives:
  presence-mask reductions over sliding windows (the ``masks`` workload
  every operator and exploration chain sits on), ``slice_time``, and a
  full ``aggregate`` through the backend-pinned graph.

Every timing is preceded by a parity assert (masks bit-equal, aggregates
``diff() == ()``), so the numbers can never come from divergent work.

Results land in ``BENCH_storage.json``.  Run directly::

    PYTHONPATH=src python benchmarks/bench_storage.py [--smoke]

Two gates, checked on the full-size run and re-checked against the
committed JSON by ``bench_regression.py``:

* the columnar backend shrinks the DBLP footprint by >=
  {GATE_FOOTPRINT}x (bit-packed presence + narrow attribute codes pay
  for the event/adjacency indices once the timeline is long enough);
* the columnar ``masks`` hot path stays within {GATE_LATENCY}x of dense
  on DBLP.

MovieLens is recorded but not gated: its 6-point timeline means
per-cell savings cannot amortize the per-edge adjacency index, and its
sub-millisecond workloads time Python dispatch overhead rather than the
layout — the trade-off ``docs/storage.md`` documents.  ``--smoke`` shrinks the
workload for CI; the checked-in JSON comes from a full run.  This file
is a script, not a pytest module — pytest collects nothing from it.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.bench import measure, speedup
from repro.core import aggregate
from repro.datasets import generate_dblp, generate_movielens
from repro.storage import backend_names, get_backend

#: Minimum dense/columnar footprint ratio on the full-size DBLP run.
GATE_FOOTPRINT = 1.5

#: Maximum columnar/dense best-time ratio for the ``masks`` hot path.
GATE_LATENCY = 1.2

DATASETS = (
    ("dblp", generate_dblp),
    ("movielens", generate_movielens),
)

#: Datasets the gates bind on (long timelines, workloads big enough to
#: time the layout rather than Python dispatch).
GATED_DATASETS = ("dblp",)

_RSS_PROBE = """\
import gc, json, sys
from repro.datasets import generate_dblp, generate_movielens
from repro.storage import get_backend

dataset, backend, scale, seed = sys.argv[1:5]
generator = {"dblp": generate_dblp, "movielens": generate_movielens}[dataset]
graph = generator(scale=float(scale), seed=int(seed))

def rss_kb():
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        return None
    return None

gc.collect()
before = rss_kb()
storage = get_backend(backend).from_graph(graph)
gc.collect()
after = rss_kb()
delta = None if before is None or after is None else after - before
print(json.dumps({"rss_delta_kb": delta, "nbytes": storage.nbytes()}))
"""


def probe_rss(dataset: str, backend: str, scale: float, seed: int):
    """Resident-set growth from holding one backend, in a fresh process."""
    try:
        out = subprocess.run(
            [sys.executable, "-c", _RSS_PROBE, dataset, backend,
             str(scale), str(seed)],
            capture_output=True,
            text=True,
            check=True,
            timeout=600,
        )
        return json.loads(out.stdout.strip().splitlines()[-1])["rss_delta_kb"]
    except (subprocess.SubprocessError, ValueError, KeyError):
        return None


def _windows(graph):
    labels = graph.timeline.labels
    width = max(1, min(3, len(labels) - 1))
    step = 2 if len(labels) > 8 else 1
    return [
        list(labels[i : i + width])
        for i in range(0, max(1, len(labels) - width), step)
    ]


def mask_workload(storage, windows):
    total = 0
    for window in windows:
        for entity in ("nodes", "edges"):
            for mode in ("any", "all", "none"):
                total += int(storage.presence_mask(entity, window, mode).sum())
    return total


def slice_workload(storage, windows):
    total = 0
    for window in windows:
        total += len(storage.slice_time(window).times)
    return total


def assert_parity(graph, backends, windows, attrs):
    """Bit-exact agreement across all backends before anything is timed."""
    names = sorted(backends)
    reference = backends[names[0]]
    for window in windows:
        for entity in ("nodes", "edges"):
            for mode in ("any", "all", "none"):
                expected = reference.presence_mask(entity, window, mode)
                for other in names[1:]:
                    actual = backends[other].presence_mask(entity, window, mode)
                    assert np.array_equal(expected, actual), (
                        f"{other}: {entity}/{mode} mask diverges over {window}"
                    )
    for distinct in (True, False):
        baseline = aggregate(graph, attrs, distinct=distinct)
        for name in names:
            variant = aggregate(
                backends[name].to_graph(), attrs, distinct=distinct
            )
            assert baseline.diff(variant) == (), (
                f"{name}: aggregate diverges (distinct={distinct})"
            )


def bench_dataset(dataset, generator, scale, seed, repeats):
    graph = generator(scale=scale, seed=seed)
    windows = _windows(graph)
    attrs = [sorted(graph.static_attribute_names)[0]]
    backends = {
        name: get_backend(name).from_graph(graph) for name in backend_names()
    }
    assert_parity(graph, backends, windows, attrs)

    footprint = {}
    for name, storage in sorted(backends.items()):
        footprint[name] = {
            "nbytes": storage.nbytes(),
            "rss_delta_kb": probe_rss(dataset, name, scale, seed),
        }
    reduction = footprint["dense"]["nbytes"] / footprint["columnar"]["nbytes"]
    print(
        f"  footprint: dense {footprint['dense']['nbytes']} B, columnar "
        f"{footprint['columnar']['nbytes']} B ({reduction:.2f}x reduction)"
    )

    pinned = {name: storage.to_graph() for name, storage in backends.items()}
    workloads = {
        "masks": lambda s, name: mask_workload(s, windows),
        "slice": lambda s, name: slice_workload(s, windows),
        "aggregate": lambda s, name: len(
            aggregate(pinned[name], attrs, distinct=False).node_weights
        ),
    }
    latency = []
    for workload, run in workloads.items():
        timings = {
            name: measure(
                lambda s=storage, n=name: run(s, n), repeats=repeats
            )
            for name, storage in sorted(backends.items())
        }
        ratio = timings["columnar"].best / timings["dense"].best
        latency.append(
            {
                "workload": workload,
                "dense_best_s": timings["dense"].best,
                "columnar_best_s": timings["columnar"].best,
                "ratio": ratio,
            }
        )
        print(
            f"  {workload:>9}: dense {timings['dense'].best:.4f}s "
            f"columnar {timings['columnar'].best:.4f}s "
            f"({ratio:.2f}x dense)"
        )
    return {
        "dataset": dataset,
        "scale": scale,
        "n_nodes": len(graph.nodes),
        "n_edges": len(graph.edges),
        "n_times": len(graph.timeline),
        "footprint": footprint,
        "footprint_reduction": reduction,
        "latency": latency,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny datasets and one repeat (CI); waives both gates",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_storage.json",
        help="where to write the JSON report",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    args.output = args.output.expanduser().resolve()

    if args.smoke:
        scale = args.scale or 0.01
        repeats = args.repeats or 1
    else:
        scale = args.scale or 0.05
        repeats = args.repeats or 3

    rows = []
    for dataset, generator in DATASETS:
        print(f"storage ({dataset} @ scale {scale}):")
        rows.append(
            bench_dataset(dataset, generator, scale, args.seed, repeats)
        )

    report = {
        "meta": {
            "smoke": args.smoke,
            "repeats": repeats,
            "scale": scale,
            "seed": args.seed,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "gate_footprint": GATE_FOOTPRINT,
            "gate_latency": GATE_LATENCY,
            "gated_datasets": list(GATED_DATASETS),
        },
        "datasets": rows,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.smoke:
        # Smoke datasets are too small for the layout trade-offs to show;
        # only the full-size run says anything about the gates.
        return 0
    failed = False
    for row in rows:
        if row["dataset"] not in GATED_DATASETS:
            continue
        if row["footprint_reduction"] < GATE_FOOTPRINT:
            print(
                f"WARNING: {row['dataset']} footprint reduction "
                f"{row['footprint_reduction']:.2f}x is below the "
                f"{GATE_FOOTPRINT}x gate"
            )
            failed = True
        masks = next(
            r for r in row["latency"] if r["workload"] == "masks"
        )
        if masks["ratio"] > GATE_LATENCY:
            print(
                f"WARNING: {row['dataset']} columnar mask path is "
                f"{masks['ratio']:.2f}x dense, above the "
                f"{GATE_LATENCY}x gate"
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
