"""Figure 7: intersection (strict span) + DIST aggregation over extending
intervals.

The paper sweeps anchored intervals until the longest one that still has
a common edge ([2000, 2017] for DBLP, [May, Jul] for MovieLens).  The
expected shape: operator cost dominates aggregation for static
attributes (the result shrinks as the span grows), while aggregation
dominates for time-varying attributes.
"""

import pytest

from repro.bench.experiments import _strict_span_limit
from repro.core import aggregate, project


def _lengths(graph, wanted):
    limit = _strict_span_limit(graph)
    return sorted({min(length, limit) for length in wanted})


@pytest.mark.parametrize("attr", ["gender", "publications"])
@pytest.mark.parametrize("length_index", [0, 1, 2])
def test_fig7_dblp(benchmark, dblp, attr, length_index):
    lengths = _lengths(dblp, [2, 6, 18])
    length = lengths[min(length_index, len(lengths) - 1)]
    span = dblp.timeline.labels[:length]

    def run():
        return aggregate(project(dblp, span), [attr], distinct=True)

    benchmark(run)


@pytest.mark.parametrize("attr", ["gender", "rating"])
@pytest.mark.parametrize("length_index", [0, 1])
def test_fig7_movielens(benchmark, movielens, attr, length_index):
    lengths = _lengths(movielens, [2, 3])
    length = lengths[min(length_index, len(lengths) - 1)]
    span = movielens.timeline.labels[:length]

    def run():
        return aggregate(project(movielens, span), [attr], distinct=True)

    benchmark(run)


@pytest.mark.parametrize("length_index", [0, 2])
def test_fig7_operator_only(benchmark, dblp, length_index):
    """Operator half of the Fig. 7b/7c time split."""
    lengths = _lengths(dblp, [2, 6, 18])
    length = lengths[min(length_index, len(lengths) - 1)]
    span = dblp.timeline.labels[:length]
    benchmark(project, dblp, span)
