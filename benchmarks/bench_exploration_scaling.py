"""Old-vs-new exploration engine scaling benchmark.

Measures what the incremental :class:`~repro.exploration.ChainEvaluator`
buys over the seed implementation's per-pair evaluation:

* **synthetic scaling** — ``exhaustive_explore`` and pruned ``explore``
  on growing synthetic timelines, ``incremental=True`` vs. the naive
  per-pair re-reduction (``incremental=False``, the seed's strategy);
* **varying-attribute fallback** — the vectorized tuple-code appearance
  counting vs. a faithful reimplementation of the seed's nested Python
  loop, driven through identical chain walks;
* **paper configurations** — the Figure 13 (MovieLens) and Figure 14
  (DBLP) exploration cases at their Section-3.5 thresholds.

Results land in ``BENCH_explore.json`` (see ``docs/benchmarks.md``).
Run directly::

    PYTHONPATH=src python benchmarks/bench_exploration_scaling.py [--smoke]

``--smoke`` shrinks every dataset so CI finishes in seconds; the
checked-in JSON comes from a full run.  This file is a script, not a
pytest-benchmark module — pytest collects nothing from it.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

import numpy as np

from repro.bench import measure, speedup
from repro.core.aggregation import _node_tuple_table
from repro.datasets import (
    EvolvingGraphConfig,
    StaticAttributeSpec,
    VaryingAttributeSpec,
    generate_dblp,
    generate_evolving_graph,
    generate_movielens,
)
from repro.exploration import (
    ChainEvaluator,
    EntityKind,
    EventCounter,
    EventType,
    ExtendSide,
    Goal,
    Semantics,
    exhaustive_explore,
    explore,
    suggest_threshold,
)

FF = (("f",), ("f",))


class _SeedEventCounter(EventCounter):
    """EventCounter with the seed's nested-loop appearance counting.

    The honest "old" baseline for time-varying attributes: one
    ``_node_tuple_table`` call and a Python loop over entities x window
    per count, exactly as the pre-vectorization implementation did.
    """

    def _count_appearances(self, event, old, new, mask):  # type: ignore[override]
        window = self._event_window(event, old, new)
        node_table = _node_tuple_table(self.graph, self.attributes, tuple(window))
        if self.entity is EntityKind.NODES:
            kept = {
                node
                for node, keep in zip(self.graph.node_presence.row_labels, mask)
                if keep
            }
            appearances = {
                (node, values)
                for node, _, values in node_table.rows
                if node in kept
            }
            if self.key is None:
                return len(appearances)
            wanted = tuple(self.key)
            return sum(1 for _, values in appearances if values == wanted)
        lookup = {(node, t): values for node, t, values in node_table.rows}
        positions = [self.graph.timeline.index_of(t) for t in window]
        presence = self.graph.edge_presence.values
        appearances = set()
        for row, edge in enumerate(self.graph.edge_presence.row_labels):
            if not mask[row]:
                continue
            u, v = edge
            for t, pos in zip(window, positions):
                if not presence[row, pos]:
                    continue
                source = lookup.get((u, t))
                target = lookup.get((v, t))
                if source is None or target is None:
                    continue
                appearances.add((edge, (source, target)))
        if self.key is None:
            return len(appearances)
        wanted = (tuple(self.key[0]), tuple(self.key[1]))
        return sum(1 for _, pair in appearances if pair == wanted)


def synthetic_graph(n_times: int, nodes: int, edges: int, seed: int = 7):
    def level(rng, node_ids, t):
        return (node_ids % 4 + 1).astype(object)

    config = EvolvingGraphConfig(
        times=tuple(range(n_times)),
        node_targets=(nodes,) * n_times,
        edge_targets=(edges,) * n_times,
        node_survival=0.8,
        node_return=0.3,
        edge_repeat=0.5,
        static_attrs=(StaticAttributeSpec("color", ("red", "blue", "green")),),
        varying_attrs=(VaryingAttributeSpec("level", level),),
        seed=seed,
    )
    return generate_evolving_graph(config)


def _drain_chains(counter: EventCounter, incremental: bool) -> int:
    """Consume every extension chain of every reference point — the
    exhaustive exploration workload, stripped of result bookkeeping."""
    total = 0
    for event, semantics, extend in (
        (EventType.STABILITY, Semantics.INTERSECTION, ExtendSide.NEW),
        (EventType.GROWTH, Semantics.UNION, ExtendSide.OLD),
    ):
        evaluator = ChainEvaluator(counter, event, incremental=incremental)
        n_times = len(counter.graph.timeline)
        for reference in range(n_times - 1):
            for step in evaluator.chain(reference, extend, semantics):
                total += step.count
    return total


def bench_synthetic_scaling(lengths, nodes, edges, repeats):
    rows = []
    for n_times in lengths:
        graph = synthetic_graph(n_times, nodes, edges)
        for name, fn in (
            (
                "exhaustive_explore",
                lambda g, inc: exhaustive_explore(
                    g, EventType.STABILITY, Goal.MAXIMAL, ExtendSide.NEW, 1,
                    incremental=inc,
                ),
            ),
            (
                "explore",
                lambda g, inc: explore(
                    g, EventType.STABILITY, Goal.MAXIMAL, ExtendSide.NEW, 1,
                    incremental=inc,
                ),
            ),
        ):
            new = measure(lambda: fn(graph, True), repeats=repeats)
            old = measure(lambda: fn(graph, False), repeats=repeats)
            assert new.result == old.result
            rows.append(
                {
                    "workload": name,
                    "n_times": n_times,
                    "n_nodes": graph.n_nodes,
                    "n_edges": graph.n_edges,
                    "old_best_s": old.best,
                    "new_best_s": new.best,
                    "speedup": speedup(old, new),
                    "evaluations": new.result.evaluations,
                }
            )
            print(
                f"  synthetic {name:>18} n={n_times:>3}: "
                f"old {old.best:.4f}s new {new.best:.4f}s "
                f"speedup {rows[-1]['speedup']:.1f}x"
            )
    return rows


def bench_varying_fallback(lengths, nodes, edges, repeats):
    rows = []
    for n_times in lengths:
        graph = synthetic_graph(n_times, nodes, edges)
        seed_counter = _SeedEventCounter(graph, attributes=["level"])
        vec_counter = EventCounter(graph, attributes=["level"])
        old = measure(lambda: _drain_chains(seed_counter, False), repeats=repeats)
        new = measure(lambda: _drain_chains(vec_counter, True), repeats=repeats)
        assert new.result == old.result
        rows.append(
            {
                "workload": "chain_counts_varying_attr",
                "n_times": n_times,
                "n_edges": graph.n_edges,
                "old_best_s": old.best,
                "new_best_s": new.best,
                "speedup": speedup(old, new),
            }
        )
        print(
            f"  varying-attr chains n={n_times:>3}: "
            f"old {old.best:.4f}s new {new.best:.4f}s "
            f"speedup {rows[-1]['speedup']:.1f}x"
        )
    return rows


# The Figure 13/14 exploration cases: (name, event, goal, extend, mode).
PAPER_CASES = (
    ("stability_maximal", EventType.STABILITY, Goal.MAXIMAL, ExtendSide.NEW, "max"),
    ("growth_minimal", EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, "max"),
    ("shrinkage_minimal", EventType.SHRINKAGE, Goal.MINIMAL, ExtendSide.OLD, "min"),
)


def bench_paper_configs(dataset, graph, repeats):
    rows = []
    for name, event, goal, extend, mode in PAPER_CASES:
        k = suggest_threshold(
            graph, event, mode, attributes=["gender"], key=FF
        )
        fn = lambda inc: explore(
            graph, event, goal, extend, k,
            attributes=["gender"], key=FF, incremental=inc,
        )
        new = measure(lambda: fn(True), repeats=repeats)
        old = measure(lambda: fn(False), repeats=repeats)
        assert new.result == old.result
        rows.append(
            {
                "dataset": dataset,
                "case": name,
                "k": k,
                "n_times": len(graph.timeline),
                "old_best_s": old.best,
                "new_best_s": new.best,
                "speedup": speedup(old, new),
                "pairs": len(new.result.pairs),
            }
        )
        print(
            f"  {dataset} {name:>18} k={k:>4}: "
            f"old {old.best:.4f}s new {new.best:.4f}s "
            f"speedup {rows[-1]['speedup']:.1f}x"
        )
    return rows


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny datasets and one repeat (CI)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_explore.json",
        help="where to write the JSON report",
    )
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)
    # A relative --output must mean "relative to where the run started",
    # even if dataset generation or a harness chdirs before the write.
    args.output = args.output.expanduser().resolve()

    if args.smoke:
        lengths, nodes, edges = [8, 12], 80, 160
        varying_lengths = [8, 12]
        ml_scale, dblp_scale = 0.02, 0.01
        repeats = args.repeats or 1
    else:
        lengths, nodes, edges = [12, 25, 50, 60], 300, 600
        varying_lengths = [12, 25]
        ml_scale, dblp_scale = 0.05, 0.02
        repeats = args.repeats or 3

    print("synthetic scaling (static path):")
    synthetic = bench_synthetic_scaling(lengths, nodes, edges, repeats)
    print("varying-attribute fallback (tuple codes vs nested loop):")
    varying = bench_varying_fallback(varying_lengths, nodes, edges, repeats)
    print("paper exploration configurations:")
    movielens = bench_paper_configs(
        "movielens", generate_movielens(scale=ml_scale), repeats
    )
    dblp = bench_paper_configs("dblp", generate_dblp(scale=dblp_scale), repeats)

    report = {
        "meta": {
            "smoke": args.smoke,
            "repeats": repeats,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "synthetic_size": {"nodes_per_t": nodes, "edges_per_t": edges},
            "movielens_scale": ml_scale,
            "dblp_scale": dblp_scale,
        },
        "synthetic_scaling": synthetic,
        "varying_fallback": varying,
        "paper_configs": movielens + dblp,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    best_long = max(
        (r["speedup"] for r in synthetic if r["n_times"] >= 50),
        default=None,
    )
    if best_long is not None and best_long < 3.0:
        print(f"WARNING: best 50+-point speedup {best_long:.1f}x is below 3x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
