"""Serving benchmark: cached QueryServer vs. naive per-request evaluation.

Drives the same mixed query workload (:func:`repro.serving.mixed_queries`
— ALL/DIST aggregates, commuted duplicates the normalizer folds, an
evolution, raw operators) through two arms built on one driver
(:func:`repro.serving.run_workload`):

* **cached** — a :class:`repro.serving.QueryServer` with its result
  cache and cube routing enabled: the serving stack this PR adds;
* **uncached** — a naive adapter that parses and evaluates every request
  from scratch with :func:`repro.query.run_query`: the pre-serving
  baseline.

Before anything is timed, every query in the mix is served twice (cold,
then from cache) and checked bit-identical to its naive evaluation, so
the QPS gap can never come from divergent answers.  Sustained QPS and
the latency distribution (p50/p99) are reported for both arms.

Results land in ``BENCH_serving.json``.  Run directly::

    PYTHONPATH=src python benchmarks/bench_serving.py [--smoke]

The gate (cached arm >= {GATE}x the uncached arm's QPS on the full-size
run) encodes the point of the subsystem: answering from the
version-keyed result cache must beat re-evaluating, and the margin grows
with graph size since evaluation is O(graph) while a hit is O(1).
``--smoke`` shrinks the workload for CI; the checked-in JSON comes from
a full run.  This file is a script, not a pytest module — pytest
collects nothing from it.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

import numpy as np

from repro.core import TemporalGraph, presence_signature
from repro.datasets import generate_dblp
from repro.query import run_query
from repro.serving import QueryServer, mixed_queries, run_workload

#: Minimum cached-over-uncached QPS ratio on the full-size run.  A warm
#: cache answers the whole mix from lookups, so the ratio tracks graph
#: size; dblp @ 0.05 lands well clear of 2x.
GATE = 2.0

ATTRS = ["gender", "publications"]


def check_parity(graph, queries):
    """Serve every query cold and cached; both must match naive
    evaluation bit-exactly before either arm is timed."""
    with QueryServer(graph) as server:
        for text in queries:
            naive = run_query(graph, text)
            for attempt in ("cold", "cached"):
                served = server.serve(text).result
                if isinstance(served, TemporalGraph):
                    assert presence_signature(served) == presence_signature(
                        naive
                    ), f"{attempt} serve of {text!r} diverged from naive"
                else:
                    problems = served.diff(naive)
                    assert not problems, (
                        f"{attempt} serve of {text!r} diverged: {problems[0]}"
                    )


def bench_arms(graph, queries, requests, threads, repeats):
    """QPS / latency per arm, best-of-``repeats`` runs through the same
    driver.  The cached server persists across repeats (steady-state
    serving); the naive arm has no state to persist."""
    rows = []
    with QueryServer(graph) as server:
        arms = (
            ("cached", server.serve),
            ("uncached", lambda text: run_query(graph, text)),
        )
        for mode, execute in arms:
            best = None
            for _ in range(repeats):
                report = run_workload(
                    execute, queries, requests=requests, threads=threads
                )
                if best is None or report.qps > best.qps:
                    best = report
            rows.append(
                {
                    "mode": mode,
                    "requests": best.requests,
                    "threads": best.threads,
                    "duration_s": best.duration_s,
                    "qps": best.qps,
                    "mean_ms": best.mean_ms,
                    "p50_ms": best.p50_ms,
                    "p99_ms": best.p99_ms,
                }
            )
            print(f"  {mode:>9}: {best.describe()}")
    return rows


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny dataset and one repeat (CI); waives the QPS gate",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_serving.json",
        help="where to write the JSON report",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--threads", type=int, default=4)
    args = parser.parse_args(argv)
    args.output = args.output.expanduser().resolve()

    if args.smoke:
        scale = args.scale or 0.01
        repeats = args.repeats or 1
        requests = args.requests or 120
    else:
        scale = args.scale or 0.05
        repeats = args.repeats or 3
        requests = args.requests or 1200

    graph = generate_dblp(scale=scale)
    queries = mixed_queries(graph, ATTRS)
    print(
        f"serving (dblp @ scale {scale}: {graph.n_nodes} nodes, "
        f"{len(queries)} queries x {requests} requests, "
        f"{args.threads} threads):"
    )
    check_parity(graph, queries)
    rows = bench_arms(graph, queries, requests, args.threads, repeats)
    by_mode = {row["mode"]: row for row in rows}
    ratio = by_mode["cached"]["qps"] / by_mode["uncached"]["qps"]
    print(f"  cached/uncached QPS ratio: {ratio:.2f}x (gate {GATE}x)")

    report = {
        "meta": {
            "smoke": args.smoke,
            "repeats": repeats,
            "scale": scale,
            "dataset": "dblp",
            "requests": requests,
            "threads": args.threads,
            "n_queries": len(queries),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "gate": GATE,
        },
        "arms": rows,
        "speedup": ratio,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.smoke:
        # Smoke graphs are too small for serving to pay off reliably;
        # only the full-size run says anything about the gate.
        return 0
    if ratio < GATE:
        print(
            f"WARNING: cached arm is {ratio:.2f}x the uncached arm, "
            f"below the {GATE}x gate"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
