"""Figure 9: difference T_new - T_old(∪) plus aggregation (additions).

Same sweep as Figure 8 with the operands swapped: the output is the
new entities of the last time point, which *shrinks* as T_old extends,
so this direction is cheaper than Fig. 8 and the aggregation (a
single-time-point aggregation) is faster than the operator.
"""

import pytest

from repro.core import aggregate, difference

DBLP_LENGTHS = [2, 10, 20]
ML_LENGTHS = [2, 5]


@pytest.mark.parametrize("distinct", [True, False], ids=["DIST", "ALL"])
@pytest.mark.parametrize("attr", ["gender", "publications"])
@pytest.mark.parametrize("length", DBLP_LENGTHS)
def test_fig9_dblp(benchmark, dblp, attr, distinct, length):
    labels = dblp.timeline.labels
    old_span, new_times = labels[:length], (labels[-1],)

    def run():
        return aggregate(
            difference(dblp, new_times, old_span), [attr], distinct=distinct
        )

    benchmark(run)


@pytest.mark.parametrize("attr", ["gender", "rating"])
@pytest.mark.parametrize("length", ML_LENGTHS)
def test_fig9_movielens(benchmark, movielens, attr, length):
    labels = movielens.timeline.labels
    old_span, new_times = labels[:length], (labels[-1],)

    def run():
        return aggregate(
            difference(movielens, new_times, old_span), [attr], distinct=True
        )

    benchmark(run)


@pytest.mark.parametrize("length", DBLP_LENGTHS)
def test_fig9_operator_only(benchmark, dblp, length):
    labels = dblp.timeline.labels
    benchmark(difference, dblp, (labels[-1],), labels[:length])
