"""Figure 10: speedup of T-distributive union(ALL) aggregation from
per-time-point materialization.

Two benchmark rows per (dataset, attribute, interval length): the
from-scratch union aggregation and the derivation from a warm
MaterializedStore.  The speedup the paper plots (8x-78x on DBLP) is the
ratio of the two rows; a correctness assertion checks the derived
weights equal the from-scratch ones on every run.
"""

import pytest

from repro.core import aggregate, union
from repro.materialize import MaterializedStore

DBLP_LENGTHS = [5, 11, 21]


@pytest.fixture(scope="module")
def warm_store(dblp):
    store = MaterializedStore(dblp)
    store.precompute(["gender"], distinct=False)
    store.precompute(["publications"], distinct=False)
    return store


@pytest.mark.parametrize("attr", ["gender", "publications"])
@pytest.mark.parametrize("length", DBLP_LENGTHS)
def test_fig10_scratch(benchmark, dblp, attr, length):
    span = dblp.timeline.labels[:length]

    def run():
        return aggregate(union(dblp, span), [attr], distinct=False)

    benchmark(run)


@pytest.mark.parametrize("attr", ["gender", "publications"])
@pytest.mark.parametrize("length", DBLP_LENGTHS)
def test_fig10_materialized(benchmark, dblp, warm_store, attr, length):
    span = dblp.timeline.labels[:length]
    derived = benchmark(warm_store.union_aggregate, [attr], span)
    direct = aggregate(union(dblp, span), [attr], distinct=False)
    assert dict(derived.node_weights) == dict(direct.node_weights)
    assert dict(derived.edge_weights) == dict(direct.edge_weights)
