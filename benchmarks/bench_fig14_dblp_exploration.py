"""Figure 14: exploration of female-female collaborations (DBLP).

Same three cases as Figure 13, on the collaboration graph: maximal
stability (intersection), minimal growth and minimal shrinkage (union),
with the Section 3.5 threshold ladders (k scaled from w_th).
"""

import pytest

from repro.exploration import (
    EventType,
    ExtendSide,
    Goal,
    explore,
    suggest_threshold,
)

FF = (("f",), ("f",))


@pytest.fixture(scope="module")
def w_th(dblp):
    return {
        EventType.STABILITY: suggest_threshold(
            dblp, EventType.STABILITY, "max", attributes=["gender"], key=FF
        ),
        EventType.GROWTH: suggest_threshold(
            dblp, EventType.GROWTH, "max", attributes=["gender"], key=FF
        ),
        EventType.SHRINKAGE: suggest_threshold(
            dblp, EventType.SHRINKAGE, "min", attributes=["gender"], key=FF
        ),
    }


@pytest.mark.parametrize("k_factor", [0.02, 0.5, 1.0])
def test_fig14a_stability_maximal(benchmark, dblp, w_th, k_factor):
    k = max(1, round(w_th[EventType.STABILITY] * k_factor))
    result = benchmark(
        explore, dblp, EventType.STABILITY, Goal.MAXIMAL,
        ExtendSide.NEW, k, attributes=["gender"], key=FF,
    )
    for pair in result.pairs:
        assert pair.count >= k


@pytest.mark.parametrize("k_factor", [0.1, 1 / 3, 1.0])
def test_fig14b_growth_minimal(benchmark, dblp, w_th, k_factor):
    k = max(1, round(w_th[EventType.GROWTH] * k_factor))
    result = benchmark(
        explore, dblp, EventType.GROWTH, Goal.MINIMAL,
        ExtendSide.NEW, k, attributes=["gender"], key=FF,
    )
    if k == w_th[EventType.GROWTH]:
        # The threshold equals the largest consecutive-pair growth, so at
        # least one pair must reach it.
        assert result.pairs


@pytest.mark.parametrize("k_factor", [1.0, 5.0, 20.0])
def test_fig14c_shrinkage_minimal(benchmark, dblp, w_th, k_factor):
    k = max(1, round(w_th[EventType.SHRINKAGE] * k_factor))
    result = benchmark(
        explore, dblp, EventType.SHRINKAGE, Goal.MINIMAL,
        ExtendSide.OLD, k, attributes=["gender"], key=FF,
    )
    for pair in result.pairs:
        assert pair.count >= k
